"""Generative differential testing: random pipelines, random legal schedules,
and a three-backend bit-identity oracle.

The paper's central guarantee — any legal schedule of an algorithm computes
the same image — is checked here on programs nobody wrote by hand:

* :func:`generate_pipeline` draws a random algorithm DAG (stencils,
  point-wise ops, clamped loads, guarded selects, multi-stage reductions,
  mixed dtypes) from a seed;
* :func:`generate_schedule` draws a random *legal* schedule for it, reusing
  the autotuner's search space widened with reorders, guarded split tails and
  non-power-of-two factors;
* :func:`run_case` realizes a :class:`FuzzCase` on the interpreter, the NumPy
  backend, and the compiled backend at several thread counts, asserting
  bit-identical output, valid bounds, and matching memory-traffic counters;
* :func:`minimize_case` shrinks failing cases; :func:`repro_script` dumps a
  self-contained replay script.

Run a corpus from the command line::

    python -m repro.fuzz --seed 0 --cases 300 --minimize

A pinned-seed slice runs in tier-1 (``tests/test_fuzz_differential.py``); the
long corpus is marked ``fuzz`` and runs nightly in CI.  See docs/testing.md.
"""

from repro.fuzz.spec import INPUT, PipelineSpec, StageSpec
from repro.fuzz.pipeline_gen import (
    BuiltPipeline,
    GeneratorConfig,
    build_pipeline,
    extended_config,
    generate_pipeline,
    generate_spec,
    input_image_for,
    spec_uses_extended_ops,
)
from repro.fuzz.schedule_gen import (
    REJECTION_ERRORS,
    consumer_map,
    generate_schedule,
    generate_schedules,
)
from repro.fuzz.oracle import (
    COMPARED_COUNTERS,
    CaseReport,
    FuzzCase,
    FuzzFailure,
    repro_script,
    run_case,
)
from repro.fuzz.minimize import default_still_fails, minimize_case

__all__ = [
    "INPUT",
    "PipelineSpec",
    "StageSpec",
    "BuiltPipeline",
    "GeneratorConfig",
    "build_pipeline",
    "extended_config",
    "spec_uses_extended_ops",
    "generate_pipeline",
    "generate_spec",
    "input_image_for",
    "REJECTION_ERRORS",
    "consumer_map",
    "generate_schedule",
    "generate_schedules",
    "COMPARED_COUNTERS",
    "CaseReport",
    "FuzzCase",
    "FuzzFailure",
    "repro_script",
    "run_case",
    "default_still_fails",
    "minimize_case",
]
