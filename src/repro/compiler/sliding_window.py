"""Sliding-window optimization (Section 4.3 of the paper).

When a function is *stored* at a loop level above the level at which it is
*computed*, with an intervening serial loop, successive iterations of that
loop can reuse values computed by earlier iterations.  This pass shrinks the
per-iteration computed region to exclude everything already computed: the new
minimum of the sliding dimension becomes ``max(old_min, old_max@(prev
iteration) + 1)``, guarded so that the first iteration still computes the full
warm-up region.

It is this transformation that trades parallelism (the intervening loop must
stay serial) for reuse (no recomputation of shared values).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.monotonic import Monotonic, is_monotonic
from repro.compiler.simplify import simplify_expr
from repro.compiler.substitute import substitute_name
from repro.core.function import Function
from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator
from repro.ir.visitor import IRVisitor

__all__ = ["sliding_window"]


class _ContainsProduce(IRVisitor):
    def __init__(self, name: str):
        self.name = name
        self.found = False

    def visit_ProducerConsumer(self, node: S.ProducerConsumer):
        if node.is_producer and node.name == self.name:
            self.found = True
        self.visit(node.body)


def _contains_produce(node, name: str) -> bool:
    finder = _ContainsProduce(name)
    finder.visit(node)
    return finder.found


class _SlidingWindow(IRMutator):
    def __init__(self, env: Dict[str, Function]):
        self.env = env
        #: func name -> loop name along which its computation slides.
        self.slides: Dict[str, str] = {}

    def visit_Realize(self, node: S.Realize):
        body = self.mutate(node.body)
        func = self.env.get(node.name)
        if func is not None:
            body = self._slide_realization(func, body)
        if body is node.body:
            return node
        return S.Realize(node.name, node.type, node.bounds, body)

    def _slide_realization(self, func: Function, body: S.Stmt) -> S.Stmt:
        """Find the innermost serial loop between the Realize and the produce of func."""
        loop = _innermost_candidate_loop(body, func.name)
        if loop is None:
            return body
        rewriter = _RewriteComputeLets(func, loop)
        result = rewriter.mutate(body)
        if rewriter.applied:
            self.slides[func.name] = loop.name
        return result


def _innermost_candidate_loop(node, func_name: str, current: Optional[S.For] = None):
    """The innermost serial For containing the produce of ``func_name`` but not inside it."""
    if isinstance(node, S.ProducerConsumer) and node.is_producer and node.name == func_name:
        return current
    if isinstance(node, S.For):
        if not _contains_produce(node.body, func_name):
            return None
        candidate = node if node.for_type == S.ForType.SERIAL else current
        return _innermost_candidate_loop(node.body, func_name, candidate)
    if isinstance(node, (S.LetStmt, S.Realize, S.Allocate, S.ProducerConsumer)):
        return _innermost_candidate_loop(node.body, func_name, current)
    if isinstance(node, S.IfThenElse):
        return _innermost_candidate_loop(node.then_case, func_name, current)
    if isinstance(node, S.Block):
        for s in node.stmts:
            if _contains_produce(s, func_name):
                return _innermost_candidate_loop(s, func_name, current)
        return None
    return None


class _RewriteComputeLets(IRMutator):
    """Apply the sliding rewrite to the compute-site lets of one function."""

    def __init__(self, func: Function, loop: S.For):
        self.func = func
        self.loop = loop
        self.applied = False

    def visit_Block(self, node: S.Block):
        return S.Block([self.mutate(s) for s in node.stmts])

    def visit_LetStmt(self, node: S.LetStmt):
        if self.applied:
            return node
        # Look for the cluster of lets <f>.<dim>.min / .max / .extent wrapping
        # the produce of `func`, then rewrite the min of the first dimension
        # whose required region moves monotonically with the loop variable.
        cluster, inner_body = _collect_let_cluster(node)
        if not _contains_produce(inner_body, self.func.name):
            return S.LetStmt(node.name, node.value, self.mutate(node.body))
        values = dict(cluster)
        rewritten = False
        for dim in self.func.args:
            min_name = f"{self.func.name}.{dim}.min"
            max_name = f"{self.func.name}.{dim}.max"
            if min_name not in values or max_name not in values:
                continue
            # Bounds inference emits unsimplified interval arithmetic (e.g.
            # ``(t + ((t - t) + 1)) - 1``); the monotonic analysis only sees
            # the linear structure after simplification.
            old_min = simplify_expr(values[min_name])
            old_max = simplify_expr(values[max_name])
            if is_monotonic(old_min, self.loop.name) != Monotonic.INCREASING:
                continue
            if is_monotonic(old_max, self.loop.name) != Monotonic.INCREASING:
                continue
            prev_max = substitute_name(old_max, self.loop.name,
                                       E.Variable(self.loop.name) - 1)
            new_min = op.make_select(
                E.Variable(self.loop.name) <= self.loop.min,
                old_min,
                op.max_(old_min, prev_max + 1),
            )
            values[min_name] = new_min
            rewritten = True
            break
        if not rewritten:
            return S.LetStmt(node.name, node.value, self.mutate(node.body))
        self.applied = True
        body = self.mutate(inner_body)
        for name, value in reversed(cluster):
            body = S.LetStmt(name, values.get(name, value), body)
        return body


def _collect_let_cluster(node: S.LetStmt):
    """Collect a maximal chain of consecutive LetStmts, returning (bindings, body)."""
    bindings = []
    current = node
    while isinstance(current, S.LetStmt):
        bindings.append((current.name, current.value))
        current = current.body
    return bindings, current


def sliding_window(stmt: S.Stmt, env: Dict[str, Function]):
    """Apply the sliding-window optimization across the whole pipeline.

    Returns ``(stmt, slides)`` where ``slides`` maps each function whose
    computation now slides to the loop it slides along (the loop that must
    remain serial — the parallelism the optimization trades away).
    """
    pass_ = _SlidingWindow(env)
    result = pass_.mutate(stmt)
    return result, pass_.slides
