"""Loop unrolling (Section 4.5 of the paper).

A loop of constant extent ``n`` scheduled as unrolled is replaced by ``n``
copies of its body with the loop index substituted; partial unrolling is
expressed by splitting first and unrolling the inner dimension.
"""

from __future__ import annotations

from repro.compiler.substitute import substitute_name
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator

__all__ = ["unroll_loops", "UnrollError"]


class UnrollError(RuntimeError):
    """Raised when an unrolled loop does not have a constant extent."""


class _Unroller(IRMutator):
    def visit_For(self, node: S.For):
        body = self.mutate(node.body)
        if node.for_type != S.ForType.UNROLLED:
            if body is node.body:
                return node
            return S.For(node.name, node.min, node.extent, node.for_type, body)
        extent = op.const_value(node.extent)
        if extent is None:
            raise UnrollError(
                f"loop {node.name!r} is scheduled unrolled but its extent "
                f"{node.extent!r} is not a compile-time constant"
            )
        copies = [
            substitute_name(body, node.name, node.min + i) for i in range(int(extent))
        ]
        return S.Block.make(copies) or S.Evaluate(op.const(0))


def unroll_loops(stmt: S.Stmt) -> S.Stmt:
    """Replace all unrolled loops by repeated copies of their bodies."""
    return _Unroller().mutate(stmt)
