"""Storage flattening (Section 4.4 of the paper).

Multi-dimensional Realize/Provide/Call sites are converted to one-dimensional
Allocate/Store/Load nodes.  A stride and minimum offset are computed for each
dimension; the flat index of a site is the dot product of its coordinates and
the strides, minus the offset of the region's minimum corner.  The stride of
the innermost (first) dimension is always 1, so dense vector loads and stores
remain dense after vectorization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.function import Function
from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator
from repro.types import Int, Type

__all__ = ["flatten_storage", "BufferLayout"]


class BufferLayout:
    """The flattened layout of one realized buffer: mins, extents, strides (expressions).

    When ``use_stride_vars`` is true the strides are symbolic variables
    (``<name>.stride.<i>``) defined by let-statements emitted around the
    allocation; otherwise they are the running product of the extents
    (appropriate for input images whose extents are compile-time constants).
    """

    __slots__ = ("name", "mins", "extents", "strides")

    def __init__(self, name: str, mins: Sequence[E.Expr], extents: Sequence[E.Expr],
                 use_stride_vars: bool = True):
        self.name = name
        self.mins = list(mins)
        self.extents = list(extents)
        self.strides: List[E.Expr] = []
        running: E.Expr = op.const(1)
        for i, extent in enumerate(self.extents):
            if use_stride_vars:
                self.strides.append(E.Variable(f"{name}.stride.{i}", Int(32)))
            else:
                self.strides.append(running)
            running = running * extent

    def flat_index(self, args: Sequence[E.Expr]) -> E.Expr:
        index: Optional[E.Expr] = None
        for arg, mn, stride in zip(args, self.mins, self.strides):
            term = (arg - mn) * stride
            index = term if index is None else index + term
        return index if index is not None else op.const(0)

    def total_size(self) -> E.Expr:
        size: E.Expr = op.const(1)
        for extent in self.extents:
            size = size * extent
        return size

    def stride_lets(self) -> List[Tuple[str, E.Expr]]:
        """(name, value) pairs defining the stride variables, outermost first."""
        lets: List[Tuple[str, E.Expr]] = []
        running: E.Expr = op.const(1)
        for i, extent in enumerate(self.extents):
            lets.append((f"{self.name}.stride.{i}", running))
            running = running * extent
        return lets


def _buffer_layout_for_image(call: E.Call) -> BufferLayout:
    """Layout of an input image (a concrete Buffer or a bound/unbound ImageParam)."""
    target = call.target
    name = call.name
    if target is not None and hasattr(target, "array"):
        shape = target.array.shape
        return BufferLayout(name, [op.const(0)] * len(shape),
                            [op.const(int(s)) for s in shape], use_stride_vars=False)
    if target is not None and hasattr(target, "is_bound") and target.is_bound():
        shape = target.get().array.shape
        return BufferLayout(name, [op.const(0)] * len(shape),
                            [op.const(int(s)) for s in shape], use_stride_vars=False)
    # Unbound image parameter: symbolic mins/extents/strides supplied by the runtime.
    dims = len(call.args)
    return BufferLayout(
        name,
        [E.Variable(f"{name}.min.{i}", Int(32)) for i in range(dims)],
        [E.Variable(f"{name}.extent.{i}", Int(32)) for i in range(dims)],
        use_stride_vars=True,
    )


class _Flattener(IRMutator):
    def __init__(self, env: Dict[str, Function]):
        self.env = env
        self.layouts: Dict[str, BufferLayout] = {}
        self.image_layouts: Dict[str, BufferLayout] = {}

    # -- storage sites -----------------------------------------------------
    def visit_Realize(self, node: S.Realize):
        mins = [b[0] for b in node.bounds]
        extents = [b[1] for b in node.bounds]
        layout = BufferLayout(node.name, mins, extents)
        self.layouts[node.name] = layout
        body = self.mutate(node.body)
        result: S.Stmt = S.Allocate(node.name, node.type, layout.total_size(), body)
        for let_name, let_value in reversed(layout.stride_lets()):
            result = S.LetStmt(let_name, let_value, result)
        return result

    def visit_Provide(self, node: S.Provide):
        args = [self.mutate(a) for a in node.args]
        value = self.mutate(node.value)
        layout = self.layouts.get(node.name)
        if layout is None:
            raise RuntimeError(f"store to {node.name!r} outside any realization")
        return S.Store(node.name, value, layout.flat_index(args))

    # -- read sites ---------------------------------------------------------
    def visit_Call(self, node: E.Call):
        args = [self.mutate(a) for a in node.args]
        if node.call_type == E.CallType.HALIDE:
            layout = self.layouts.get(node.name)
            if layout is None:
                raise RuntimeError(f"load from {node.name!r} outside any realization")
            return E.Load(node.type, node.name, layout.flat_index(args))
        if node.call_type == E.CallType.IMAGE:
            layout = self.image_layouts.get(node.name)
            if layout is None:
                layout = _buffer_layout_for_image(node)
                self.image_layouts[node.name] = layout
            return E.Load(node.type, node.name, layout.flat_index(args))
        if all(a is b for a, b in zip(args, node.args)):
            return node
        return E.Call(node.type, node.name, args, node.call_type, node.target)


def flatten_storage(stmt: S.Stmt, env: Dict[str, Function]):
    """Flatten all storage; returns (stmt, realize layouts, input-image layouts)."""
    flattener = _Flattener(env)
    result = flattener.mutate(stmt)
    return result, flattener.layouts, flattener.image_layouts
