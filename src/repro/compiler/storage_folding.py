"""Storage folding (Section 4.3 of the paper).

If a function's storage is allocated outside a serial loop but each iteration
only touches a window of bounded size that marches monotonically across the
allocation, the storage can be folded: accesses are rewritten modulo a small
power of two and the allocation shrinks to that size.  For the two-stage blur
with a sliding window this reduces the intermediate stage to three (rounded to
four) scanlines, cutting peak memory and working-set size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.bounds import box_touched
from repro.analysis.linear import constant_difference
from repro.analysis.monotonic import Monotonic, is_monotonic
from repro.compiler.simplify import simplify_expr
from repro.core.function import Function
from repro.core.schedule import ScheduleError
from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator
from repro.ir.visitor import IRVisitor

__all__ = ["storage_folding", "MAX_FOLD_FACTOR"]

#: Folding is only worthwhile for small windows; beyond this we leave storage alone.
MAX_FOLD_FACTOR = 256


def _round_up_to_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class _AccessRewriter(IRMutator):
    """Rewrite accesses to one function so that dimension ``dim_index`` wraps mod ``factor``."""

    def __init__(self, name: str, dim_index: int, factor: int):
        self.name = name
        self.dim_index = dim_index
        self.factor = factor

    def _fold(self, args) -> List[E.Expr]:
        new_args = list(args)
        new_args[self.dim_index] = op.make_binary(E.Mod, new_args[self.dim_index], self.factor)
        return new_args

    def visit_Call(self, node: E.Call):
        args = [self.mutate(a) for a in node.args]
        if node.call_type == E.CallType.HALIDE and node.name == self.name:
            args = self._fold(args)
        return E.Call(node.type, node.name, args, node.call_type, node.target)

    def visit_Provide(self, node: S.Provide):
        args = [self.mutate(a) for a in node.args]
        value = self.mutate(node.value)
        if node.name == self.name:
            args = self._fold(args)
        return S.Provide(node.name, value, args)


class _SerialChainChecker(IRVisitor):
    """Checks that every loop between a Realize and the produce of its function is serial."""

    def __init__(self, name: str):
        self.name = name
        self.all_serial = True
        self._stack: List[S.For] = []

    def visit_For(self, node: S.For):
        self._stack.append(node)
        self.visit(node.body)
        self._stack.pop()

    def visit_ProducerConsumer(self, node: S.ProducerConsumer):
        if node.is_producer and node.name == self.name:
            if any(f.for_type != S.ForType.SERIAL for f in self._stack):
                self.all_serial = False
        self.visit(node.body)


def _find_compute_lets(body: S.Stmt, name: str) -> Dict[str, E.Expr]:
    """The values of the <name>.<dim>.{min,max} lets wrapping the produce of ``name``."""
    found: Dict[str, E.Expr] = {}

    class _Finder(IRVisitor):
        def visit_LetStmt(self, node: S.LetStmt):
            if node.name.startswith(name + ".") and (
                node.name.endswith(".min") or node.name.endswith(".max")
            ):
                found.setdefault(node.name, node.value)
            self.visit(node.value)
            self.visit(node.body)

    _Finder().visit(body)
    return found


class _StorageFolder(IRMutator):
    def __init__(self, env: Dict[str, Function]):
        self.env = env
        self.folds: Dict[str, Dict[str, int]] = {}

    def visit_Realize(self, node: S.Realize):
        body = self.mutate(node.body)
        func = self.env.get(node.name)
        if func is None:
            if body is node.body:
                return node
            return S.Realize(node.name, node.type, node.bounds, body)

        checker = _SerialChainChecker(node.name)
        checker.visit(body)
        bounds = list(node.bounds)
        forced = dict(getattr(func.schedule, "storage_folds", None) or {})
        if forced:
            body, bounds = self._apply_forced_folds(
                func, forced, body, bounds, checker.all_serial
            )
        elif checker.all_serial:
            body, bounds = self._try_fold(func, body, bounds)
        return S.Realize(node.name, node.type, bounds, body)

    def _apply_forced_folds(self, func: Function, forced: Dict[str, int],
                            body: S.Stmt, bounds: List[Tuple[E.Expr, E.Expr]],
                            all_serial: bool):
        """Apply schedule-directed ``storage_fold`` directives, or raise ScheduleError.

        Unlike the automatic path (which silently skips anything it cannot
        prove safe), an explicit fold is a promise by the schedule author and
        every legality condition is checked loudly: this is where a schedule
        that would need unbounded history is rejected.
        """
        lets = _find_compute_lets(body, func.name)
        loop_names = _loop_names_between(body, func.name)
        for dim, factor in forced.items():
            what = f"storage_fold({dim!r}, {factor}) on {func.name!r}"
            if dim not in func.args:
                raise ScheduleError(
                    f"{what}: no such dimension (has {list(func.args)!r})")
            factor = int(factor)
            if factor < 1:
                raise ScheduleError(f"{what}: fold factor must be >= 1")
            if not all_serial:
                raise ScheduleError(
                    f"{what}: a parallel loop sits between the storage and the "
                    f"computation, so folded values could be overwritten while "
                    f"other iterations still need them")
            dim_index = func.args.index(dim)
            min_expr = lets.get(f"{func.name}.{dim}.min")
            max_expr = lets.get(f"{func.name}.{dim}.max")
            if min_expr is None or max_expr is None:
                raise ScheduleError(
                    f"{what}: the function is not computed inside its storage "
                    f"scope (inlined, or computed at the same level it is "
                    f"stored), so there is no window to fold")
            window = constant_difference(max_expr, min_expr)
            if window is None or window < 0:
                raise ScheduleError(
                    f"{what}: the extent of {dim!r} touched per iteration is "
                    f"not a constant — the schedule would require unbounded "
                    f"history to fold this dimension")
            if int(window) + 1 > factor:
                raise ScheduleError(
                    f"{what}: each iteration touches {int(window) + 1} entries "
                    f"of {dim!r}, which do not fit in a fold of {factor}")
            marching = any(
                is_monotonic(simplify_expr(min_expr), loop) == Monotonic.INCREASING
                for loop in loop_names
            )
            if not marching:
                raise ScheduleError(
                    f"{what}: the window of {dim!r} does not march "
                    f"monotonically along an enclosing serial loop, so folding "
                    f"would overwrite values still needed")
            body = _AccessRewriter(func.name, dim_index, factor).mutate(body)
            bounds[dim_index] = (op.const(0), op.const(factor))
            self.folds.setdefault(func.name, {})[dim] = factor
        return body, bounds

    def _try_fold(self, func: Function, body: S.Stmt,
                  bounds: List[Tuple[E.Expr, E.Expr]]):
        lets = _find_compute_lets(body, func.name)
        loop_names = _loop_names_between(body, func.name)
        for dim_index, dim in enumerate(func.args):
            min_expr = lets.get(f"{func.name}.{dim}.min")
            max_expr = lets.get(f"{func.name}.{dim}.max")
            if min_expr is None or max_expr is None:
                continue
            window = constant_difference(max_expr, min_expr)
            if window is None or window < 0:
                continue
            fold = _round_up_to_power_of_two(int(window) + 1)
            if fold > MAX_FOLD_FACTOR:
                continue
            # The footprint must march monotonically along some enclosing serial loop;
            # otherwise folding would overwrite values still needed.
            marching = any(
                is_monotonic(simplify_expr(min_expr), loop) == Monotonic.INCREASING
                for loop in loop_names
            )
            if not marching:
                continue
            # Don't bother folding allocations already known to be at most `fold`.
            alloc_extent = constant_difference(bounds[dim_index][1], op.const(0))
            if alloc_extent is not None and alloc_extent <= fold:
                continue
            body = _AccessRewriter(func.name, dim_index, fold).mutate(body)
            bounds[dim_index] = (op.const(0), op.const(fold))
            self.folds.setdefault(func.name, {})[dim] = fold
            break
        return body, bounds


def _loop_names_between(body: S.Stmt, name: str) -> List[str]:
    """Names of loops between the top of ``body`` and the produce of ``name``."""
    names: List[str] = []

    class _Finder(IRVisitor):
        def __init__(self):
            self.stack: List[str] = []

        def visit_For(self, node: S.For):
            self.stack.append(node.name)
            self.visit(node.body)
            self.stack.pop()

        def visit_ProducerConsumer(self, node: S.ProducerConsumer):
            if node.is_producer and node.name == name and not names:
                names.extend(self.stack)
            self.visit(node.body)

    _Finder().visit(body)
    return names


def storage_folding(stmt: S.Stmt, env: Dict[str, Function]) -> Tuple[S.Stmt, Dict[str, Dict[str, int]]]:
    """Fold storage where legal; returns the new statement and a report of folds applied."""
    folder = _StorageFolder(env)
    result = folder.mutate(stmt)
    # A forced fold on a function that never materializes storage (inlined,
    # or the pipeline output whose buffer the caller owns) would silently do
    # nothing; reject it so schedules stay honest.
    for name, func in env.items():
        forced = getattr(func.schedule, "storage_folds", None) or {}
        applied = folder.folds.get(name, {})
        missing = [dim for dim in forced if dim not in applied]
        if missing:
            raise ScheduleError(
                f"storage_fold on {name!r} (dims {missing!r}): the function "
                f"has no storage of its own to fold (it is inlined or is the "
                f"pipeline output)")
    return result, folder.folds
