"""Lowering / loop synthesis (Section 4.1 of the paper).

Lowering starts from the output function and builds a loop nest covering the
required region of the output, whose body evaluates the function at a single
point (a :class:`~repro.ir.stmt.Provide`).  It then proceeds recursively up
the pipeline, injecting the storage (:class:`~repro.ir.stmt.Realize`) and
computation (produce nests) of each earlier stage at the loop levels given by
its call schedule.

Loop bounds are left as symbolic expressions of the required region of each
function (``<f>.<dim>.min`` / ``<f>.<dim>.extent``); bounds inference resolves
them afterwards.  Split dimensions round the traversed domain up to a multiple
of the split factor, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.compiler.substitute import substitute
from repro.core.function import Function
from repro.core.loop_level import LoopLevel
from repro.core.schedule import FuncSchedule, ScheduleError
from repro.core.split import Split, TailStrategy
from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.visitor import IRVisitor
from repro.types import Int

__all__ = [
    "build_loop_nest",
    "produce_nest",
    "schedule_functions",
    "realize_bounds_for",
    "loop_var_name",
    "bound_var",
]


# ---------------------------------------------------------------------------
# naming conventions
# ---------------------------------------------------------------------------

def loop_var_name(func_name: str, dim: str, stage: int = 0) -> str:
    """The IR name of a loop variable of a function's stage."""
    if stage == 0:
        return f"{func_name}.{dim}"
    return f"{func_name}.s{stage}.{dim}"


def bound_var(func_name: str, dim: str, which: str) -> E.Variable:
    """A symbolic bound variable (``which`` in {min, max, extent, min_realized, ...})."""
    return E.Variable(f"{func_name}.{dim}.{which}", Int(32))


# ---------------------------------------------------------------------------
# loop-bound expressions for (possibly split) dimensions
# ---------------------------------------------------------------------------

def _extent_of_dim(func: Function, schedule: FuncSchedule, var: str) -> E.Expr:
    """The loop extent of a dimension, accounting for splits (rounding up)."""
    for s in schedule.splits:
        if s.inner == var:
            return op.const(s.factor)
        if s.outer == var:
            old_extent = _extent_of_dim(func, schedule, s.old)
            return (old_extent + (s.factor - 1)) / s.factor
    # A root storage dimension.
    return bound_var(func.name, var, "extent")


def _min_of_dim(func: Function, schedule: FuncSchedule, var: str) -> E.Expr:
    for s in schedule.splits:
        if s.inner == var or s.outer == var:
            return op.const(0)
    return bound_var(func.name, var, "min")


def realize_bounds_for(func: Function, which: str = "realized") -> List:
    """The (min, extent) expression pairs used for a function's Realize node.

    Extents are rounded up to a multiple of the product of split factors along
    each storage dimension so that the rounded-up traversal of split loops
    stays in bounds.
    """
    schedule = func.schedule
    bounds = []
    for dim in schedule.storage_dims:
        min_expr = bound_var(func.name, dim, "min_realized" if which == "realized" else "min")
        extent_expr = bound_var(
            func.name, dim, "extent_realized" if which == "realized" else "extent"
        )
        if schedule.is_split(dim):
            if which == "realized":
                # The computed region may start anywhere inside the stored
                # region, and split loops round their traversal up, so pad
                # the allocation by the worst-case traversal overshoot.
                pad = schedule.split_padding(dim)
                if pad:
                    extent_expr = extent_expr + pad
            else:
                extent_expr = _rounded_extent_expr(schedule, dim, extent_expr)
        bounds.append((min_expr, extent_expr))
    return bounds


def _rounded_extent_expr(schedule: FuncSchedule, var: str, extent_expr: E.Expr) -> E.Expr:
    """Symbolic form of :meth:`FuncSchedule.rounded_extent`: the contiguous
    region the rounded-up traversal of ``var``'s split chain covers.

    Follows both the outer chain (tile counts round up) and the inner chain
    (a re-split inner dimension makes each tile cover more than its stride) —
    a single multiplicative round-up factor is not sound for the latter.
    """
    split = schedule.split_children(var)
    if split is None:
        return extent_expr
    tiles = _rounded_extent_expr(
        schedule, split.outer, (extent_expr + (split.factor - 1)) / split.factor)
    inner_cover = schedule.rounded_extent(split.inner, split.factor)
    return (tiles - 1) * split.factor + inner_cover


# ---------------------------------------------------------------------------
# building the loop nest of a single stage
# ---------------------------------------------------------------------------

def _pure_var_substitutions(func: Function) -> Dict[str, E.Expr]:
    return {
        arg: E.Variable(loop_var_name(func.name, arg), Int(32)) for arg in func.args
    }


def _wrap_split_lets(func: Function, schedule: FuncSchedule, body: S.Stmt,
                     stage: int) -> S.Stmt:
    """Add the let-statements reconstituting split dimensions.

    For a split ``old -> outer, inner`` the original coordinate is
    ``old = old_min + outer * factor + inner`` (``old_min`` only when ``old``
    is a root storage dimension, since derived dimensions are zero-based).
    """
    for split in schedule.splits:
        outer = E.Variable(loop_var_name(func.name, split.outer, stage), Int(32))
        inner = E.Variable(loop_var_name(func.name, split.inner, stage), Int(32))
        value = outer * split.factor + inner
        if split.old in schedule.storage_dims:
            value = bound_var(func.name, split.old, "min") + value
        body = S.LetStmt(loop_var_name(func.name, split.old, stage), value, body)
    return body


def _guard_conditions(func: Function, schedule: FuncSchedule) -> Optional[E.Expr]:
    """The combined bounds guard required by GUARD_WITH_IF splits (or None)."""
    condition = None
    guarded_roots = set()
    for split in schedule.splits:
        if split.tail == TailStrategy.GUARD_WITH_IF:
            guarded_roots.add(schedule.root_of(split.old))
    for root in sorted(guarded_roots):
        coord = E.Variable(loop_var_name(func.name, root), Int(32))
        check = coord <= bound_var(func.name, root, "max")
        condition = check if condition is None else (condition & check)
    return condition


def build_loop_nest(func: Function, stage: int) -> S.Stmt:
    """The loop nest evaluating one stage (0 = pure definition, >=1 = updates)."""
    if stage == 0:
        return _build_pure_loop_nest(func)
    return _build_update_loop_nest(func, stage)


def _build_pure_loop_nest(func: Function) -> S.Stmt:
    schedule = func.schedule
    substitutions = _pure_var_substitutions(func)
    value = substitute(func.definition.value, substitutions)
    args = [substitutions[a] for a in func.args]
    body: S.Stmt = S.Provide(func.name, value, args)

    guard = _guard_conditions(func, schedule)
    if guard is not None:
        body = S.IfThenElse(guard, body)

    body = _wrap_split_lets(func, schedule, body, stage=0)

    for dim in schedule.dims:  # innermost first
        body = S.For(
            loop_var_name(func.name, dim.var),
            _min_of_dim(func, schedule, dim.var),
            _extent_of_dim(func, schedule, dim.var),
            dim.for_type,
            body,
        )
    return body


def _build_update_loop_nest(func: Function, stage: int) -> S.Stmt:
    update = func.updates[stage - 1]
    schedule = func.schedule

    substitutions: Dict[str, E.Expr] = {}
    free_pure = update.free_pure_vars(func.args)
    for arg in free_pure:
        substitutions[arg] = E.Variable(loop_var_name(func.name, arg, stage), Int(32))
    rdom = update.rdom
    rvar_loops = []
    if rdom is not None:
        for rvar in rdom.variables:
            loop_name = loop_var_name(func.name, rvar.name, stage)
            substitutions[rvar.name] = E.Variable(loop_name, Int(32))
            rvar_loops.append((loop_name, rvar.min, rvar.extent))

    args = [substitute(a, substitutions) for a in update.args]
    value = substitute(update.value, substitutions)
    body: S.Stmt = S.Provide(func.name, value, args)

    def pure_loop(inner: S.Stmt, arg: str, for_type: S.ForType) -> S.Stmt:
        # Free pure variables loop over the stage's required region.
        return S.For(
            loop_var_name(func.name, arg, stage),
            bound_var(func.name, arg, "min"),
            bound_var(func.name, arg, "extent"),
            for_type,
            inner,
        )

    if schedule.rdom_outer and rvar_loops:
        # Interchanged nest: pure-variable loops innermost (first argument
        # innermost), reduction loops hoisted outside.  Sound only when
        # pure-var points are independent — validated here; violations are
        # documented-illegal schedules (ScheduleError), not findings.
        _validate_rdom_outer(func, update, free_pure)
        for arg in free_pure:
            body = pure_loop(body, arg, _hoisted_for_type(schedule, arg))
        for loop_name, mn, extent in rvar_loops:
            mn = substitute(mn, substitutions)
            extent = substitute(extent, substitutions)
            body = S.For(loop_name, mn, extent, S.ForType.SERIAL, body)
        return body

    # Reduction-domain loops, first variable innermost (lexicographic order).
    for loop_name, mn, extent in rvar_loops:
        mn = substitute(mn, substitutions)
        extent = substitute(extent, substitutions)
        body = S.For(loop_name, mn, extent, S.ForType.SERIAL, body)

    # Free pure variables become outer loops over the stage's required region.
    for arg in free_pure:
        body = pure_loop(body, arg, S.ForType.SERIAL)
    return body


def _hoisted_for_type(schedule: FuncSchedule, arg: str) -> S.ForType:
    """The for-type of a hoisted update-stage pure loop.

    Update stages ignore the pure stage's splits, but a PARALLEL marking on
    any loop dimension derived from ``arg`` carries over: under ``rdom_outer``
    the pure-var iterations of one reduction step are independent (that is
    exactly what :func:`_validate_rdom_outer` proves), so running them in
    parallel cannot change the result.
    """
    for d in schedule.dims:
        if d.for_type == S.ForType.PARALLEL and schedule.root_of(d.var) == arg:
            return S.ForType.PARALLEL
    return S.ForType.SERIAL


def _expr_variable_names(node, into: set) -> None:
    from repro.ir.visitor import children_of

    if isinstance(node, E.Variable):
        into.add(node.name)
    for child in children_of(node):
        _expr_variable_names(child, into)


def _validate_rdom_outer(func: Function, update, free_pure: Sequence[str]) -> None:
    """Reject ``rdom_outer`` schedules whose interchange could be observable.

    Hoisting the reduction loops is sound iff each pure-var point evolves
    independently: the update may reference the function *only at its own
    point* (``f[x-1, y]`` on the right-hand side would make point ``x`` read
    point ``x-1`` mid-reduction, and the interchange would change which
    reduction step's value it sees), and the RDom bounds must not depend on
    the pure variables (they become outer-loop bounds).
    """
    expected = tuple(update.args)

    class _SelfCalls(IRVisitor):
        def __init__(self):
            self.bad = False

        def visit_Call(self, node: E.Call):
            if (node.call_type == E.CallType.HALIDE and node.name == func.name
                    and tuple(node.args) != expected):
                self.bad = True
            for a in node.args:
                self.visit(a)

    finder = _SelfCalls()
    finder.visit(update.value)
    for a in update.args:
        finder.visit(a)
    if finder.bad:
        raise ScheduleError(
            f"rdom_outer on {func.name!r}: the update references "
            f"{func.name!r} at a point other than the one it defines, so the "
            "reduction loops cannot be hoisted outside the pure-variable loops"
        )

    pure_names = set(free_pure)
    if update.rdom is not None:
        for rvar in update.rdom.variables:
            referenced: set = set()
            for e in (rvar.min, rvar.extent):
                if isinstance(e, E.Expr):
                    _expr_variable_names(e, referenced)
            clash = referenced & pure_names
            if clash:
                raise ScheduleError(
                    f"rdom_outer on {func.name!r}: reduction variable "
                    f"{rvar.name!r} has bounds depending on pure variable(s) "
                    f"{sorted(clash)}, which would be undefined outside their "
                    "loops"
                )


def produce_nest(func: Function) -> S.Stmt:
    """The complete produce statement for a function: pure stage plus updates."""
    stages = [build_loop_nest(func, 0)]
    for stage in range(1, len(func.updates) + 1):
        stages.append(build_loop_nest(func, stage))
    return S.ProducerConsumer(func.name, True, S.Block.make(stages))


# ---------------------------------------------------------------------------
# realization injection
# ---------------------------------------------------------------------------

class _CallFinder(IRVisitor):
    def __init__(self, name: str):
        self.name = name
        self.found = False

    def visit_Call(self, node: E.Call):
        if node.call_type == E.CallType.HALIDE and node.name == self.name:
            self.found = True
        for a in node.args:
            self.visit(a)


def _contains_call_to(node, name: str) -> bool:
    finder = _CallFinder(name)
    finder.visit(node)
    return finder.found


class _InjectRealization:
    """Inject the Realize and produce nest of one function into the current stmt."""

    def __init__(self, func: Function):
        self.func = func
        self.compute_level = func.schedule.compute_level
        self.store_level = func.schedule.store_level
        self.injected_produce = 0
        self.injected_realize = 0

    def inject(self, stmt: S.Stmt) -> S.Stmt:
        stmt = self._walk(stmt)
        if self.injected_produce == 0:
            raise ScheduleError(
                f"cannot compute {self.func.name!r} at loop "
                f"{self.compute_level!r}: no such loop encloses a use of it"
            )
        if self.store_level.is_root():
            stmt = S.Realize(self.func.name, self.func.output_type,
                             realize_bounds_for(self.func), stmt)
            self.injected_realize += 1
        if self.injected_realize == 0:
            raise ScheduleError(
                f"storage for {self.func.name!r} at {self.store_level!r} does not "
                f"enclose its computation at {self.compute_level!r}"
            )
        return stmt

    # -- recursive rewrite ------------------------------------------------
    def _walk(self, node):
        if isinstance(node, S.For):
            body = self._walk(node.body)
            if (
                self.compute_level.is_at()
                and node.name == self.compute_level.loop_name()
                and _contains_call_to(body, self.func.name)
            ):
                body = S.Block([
                    S.ProducerConsumer(self.func.name, True, produce_nest(self.func)),
                    S.ProducerConsumer(self.func.name, False, body),
                ])
                self.injected_produce += 1
            if (
                self.store_level.is_at()
                and node.name == self.store_level.loop_name()
                and self.injected_produce > self.injected_realize
            ):
                body = S.Realize(self.func.name, self.func.output_type,
                                 realize_bounds_for(self.func), body)
                self.injected_realize = self.injected_produce
            if body is node.body:
                return node
            return S.For(node.name, node.min, node.extent, node.for_type, body)

        if isinstance(node, S.Block):
            return S.Block([self._walk(s) for s in node.stmts])
        if isinstance(node, S.ProducerConsumer):
            return S.ProducerConsumer(node.name, node.is_producer, self._walk(node.body))
        if isinstance(node, S.Realize):
            return S.Realize(node.name, node.type, node.bounds, self._walk(node.body))
        if isinstance(node, S.LetStmt):
            return S.LetStmt(node.name, node.value, self._walk(node.body))
        if isinstance(node, S.IfThenElse):
            return S.IfThenElse(node.condition, self._walk(node.then_case),
                                self._walk(node.else_case) if node.else_case else None)
        if isinstance(node, S.Allocate):
            return S.Allocate(node.name, node.type, node.size, self._walk(node.body))
        return node


def schedule_functions(env: Dict[str, Function], order: Sequence[str],
                       output: Function) -> S.Stmt:
    """Build the complete loop nest for a pipeline.

    ``env`` maps names to (non-inlined) functions, ``order`` is a realization
    order with producers first and the output last.
    """
    # The output function's own produce nest, wrapped in its Realize.
    stmt: S.Stmt = produce_nest(output)
    stmt = S.Realize(output.name, output.output_type,
                     realize_bounds_for(output, which="required"), stmt)

    # Inject the remaining functions from the consumers backwards so that, by
    # the time a producer is injected, every call to it is already present.
    for name in reversed([n for n in order if n != output.name]):
        func = env.get(name)
        if func is None or func.schedule.is_inlined():
            continue
        compute_level = func.schedule.compute_level
        store_level = func.schedule.store_level
        if compute_level.is_root():
            produce = S.ProducerConsumer(func.name, True, produce_nest(func))
            consume = S.ProducerConsumer(func.name, False, stmt)
            stmt = S.Block([produce, consume])
            stmt = S.Realize(func.name, func.output_type, realize_bounds_for(func), stmt)
            if not store_level.is_root():
                raise ScheduleError(
                    f"{func.name!r} is computed at root but stored at {store_level!r}; "
                    "storage must be at or outside the compute level"
                )
        else:
            stmt = _InjectRealization(func).inject(stmt)
    return stmt
