"""The lowering driver: algorithm + schedule -> executable statement.

This mirrors the pass pipeline of Figure 5 in the paper:

    lowering -> bounds inference -> sliding window & storage folding ->
    flattening -> vectorization & unrolling -> simplification -> backend

Each pass can be disabled through :class:`LoweringOptions`, which the ablation
benchmarks use to quantify the contribution of individual optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.call_graph import build_environment, realization_order
from repro.compiler.bounds_inference import bounds_inference
from repro.compiler.flatten import BufferLayout, flatten_storage
from repro.compiler.inline import inline_all_inlined
from repro.compiler.schedule_functions import schedule_functions
from repro.compiler.simplify import simplify
from repro.compiler.sliding_window import sliding_window
from repro.compiler.storage_folding import storage_folding
from repro.compiler.unroll import unroll_loops
from repro.compiler.validation import validate_schedules
from repro.compiler.vectorize import vectorize_loops
from repro.core.function import Function
from repro.core.schedule import FuncSchedule
from repro.ir import stmt as S

__all__ = ["LoweringOptions", "LoweredPipeline", "lower"]


@dataclass
class LoweringOptions:
    """Switches controlling which optimization passes run (all on by default)."""

    sliding_window: bool = True
    storage_folding: bool = True
    vectorize: bool = True
    unroll: bool = True
    simplify: bool = True


@dataclass
class LoweredPipeline:
    """The result of lowering: the statement plus everything the runtime needs."""

    stmt: S.Stmt
    env: Dict[str, Function]
    output: Function
    #: Layouts of realized (internal + output) buffers, keyed by function name.
    layouts: Dict[str, BufferLayout]
    #: Layouts of input images, keyed by buffer / image-parameter name.
    image_layouts: Dict[str, BufferLayout]
    #: Storage folds applied, func -> dim -> fold factor.
    folds: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Sliding windows applied, func -> serial loop name it slides along.
    slides: Dict[str, str] = field(default_factory=dict)
    options: LoweringOptions = field(default_factory=LoweringOptions)


def _demote_loops(stmt: S.Stmt, which: S.ForType) -> S.Stmt:
    """Turn loops of one kind back into serial loops (used by pass ablations)."""
    from repro.ir.mutator import IRMutator

    class _Demote(IRMutator):
        def visit_For(self, node: S.For):
            body = self.mutate(node.body)
            for_type = S.ForType.SERIAL if node.for_type == which else node.for_type
            if body is node.body and for_type == node.for_type:
                return node
            return S.For(node.name, node.min, node.extent, for_type, body)

    return _Demote().mutate(stmt)


def _prepare_environment(output_function: Function,
                         schedule_overrides: Optional[Dict[str, FuncSchedule]]):
    """Build a compilation-private environment (copies of every reachable Function)."""
    original_env = build_environment([output_function])
    order = realization_order([output_function], original_env)

    overrides = schedule_overrides or {}
    env: Dict[str, Function] = {}
    for name, func in original_env.items():
        env[name] = func.copy_for_compilation(overrides.get(name))
    output = env[output_function.name]
    return env, order, output


def lower(output_function: Function,
          schedule_overrides: Optional[Dict[str, FuncSchedule]] = None,
          options: Optional[LoweringOptions] = None,
          output_bounds: Optional[Sequence] = None) -> LoweredPipeline:
    """Lower a pipeline rooted at ``output_function`` into an executable statement.

    ``output_bounds`` optionally gives concrete ``(min, extent)`` pairs for the
    output dimensions.  When provided, they are substituted before bounds
    inference, so every inferred region folds down to constants — the bounds
    "ultimately depend only on the size of the output image" (Section 4.2), and
    specializing on that size keeps the inferred expressions small for deep
    pipelines.  Without it, bounds stay symbolic and are bound at run time.
    """
    import sys

    # Inlining long chains of stages produces deep expression trees; the
    # tree-walking passes recurse over them.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 100000))
    options = options or LoweringOptions()
    env, order, output = _prepare_environment(output_function, schedule_overrides)

    # The output is always computed at root, and stages with update definitions
    # (reductions) cannot be inlined: give unscheduled ones the breadth-first
    # default, matching the paper's "computed and stored at root" starting point.
    output.schedule.compute_root()
    for func in env.values():
        if func is not output and func.has_updates() and func.schedule.is_inlined():
            func.schedule.compute_root()

    validate_schedules(env, order, output)

    # 1. Inline every stage scheduled inline.
    live_env = inline_all_inlined(env, order)
    live_env[output.name] = output
    live_order = [name for name in order if name in live_env]

    # 2. Loop synthesis.
    stmt = schedule_functions(live_env, live_order, output)

    # Optional specialization on the requested output region.
    if output_bounds is not None:
        from repro.compiler.substitute import substitute
        from repro.ir import op as _op

        replacements = {}
        for dim, (mn, extent) in zip(output.args, output_bounds):
            replacements[f"{output.name}.{dim}.min"] = _op.const(int(mn))
            replacements[f"{output.name}.{dim}.extent"] = _op.const(int(extent))
            # GUARD_WITH_IF split tails on the output guard against ".max".
            replacements[f"{output.name}.{dim}.max"] = _op.const(int(mn) + int(extent) - 1)
        stmt = substitute(stmt, replacements)

    # 3. Bounds inference.
    stmt = bounds_inference(stmt, live_env, [output.name])

    # 4. Storage folding, then sliding window (folding uses the un-slid window size).
    folds: Dict[str, Dict[str, int]] = {}
    slides: Dict[str, str] = {}
    if options.storage_folding:
        stmt, folds = storage_folding(stmt, live_env)
    if options.sliding_window:
        stmt, slides = sliding_window(stmt, live_env)

    # 5. Flattening.
    stmt, layouts, image_layouts = flatten_storage(stmt, live_env)

    # 6. Unrolling and vectorization.  When a pass is disabled (ablations), the
    # corresponding loops fall back to serial execution.
    if options.unroll:
        stmt = unroll_loops(stmt)
    else:
        stmt = _demote_loops(stmt, S.ForType.UNROLLED)
    if options.vectorize:
        stmt = vectorize_loops(stmt)
    else:
        stmt = _demote_loops(stmt, S.ForType.VECTORIZED)

    # 7. Simplification.
    if options.simplify:
        stmt = simplify(stmt)

    return LoweredPipeline(
        stmt=stmt,
        env=live_env,
        output=output,
        layouts=layouts,
        image_layouts=image_layouts,
        folds=folds,
        slides=slides,
        options=options,
    )
