"""Schedule validation.

The autotuner generates schedules randomly and relies on invalid ones being
rejected (Section 5: "we reject any partially completed schedules that are
invalid").  This module performs the checks that can be done before lowering;
structural problems that depend on the synthesized loop nest (e.g. a store
level that does not enclose the compute level) are detected during lowering
itself and surface as :class:`~repro.core.schedule.ScheduleError`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.function import Function
from repro.core.schedule import ScheduleError
from repro.ir.stmt import ForType

__all__ = ["validate_schedules"]


def _validate_level(func: Function, level, env: Dict[str, Function], what: str) -> None:
    if not level.is_at():
        return
    consumer = env.get(level.func)
    if consumer is None:
        raise ScheduleError(
            f"{func.name!r} is {what} at {level.func!r}.{level.var}, but "
            f"{level.func!r} is not part of this pipeline"
        )
    if consumer.name == func.name:
        raise ScheduleError(f"{func.name!r} cannot be {what} at its own loops")
    if consumer.schedule.is_inlined():
        raise ScheduleError(
            f"{func.name!r} is {what} at a loop of {consumer.name!r}, "
            "which is inlined and therefore has no loops"
        )
    if not consumer.schedule.has_dim(level.var):
        raise ScheduleError(
            f"{func.name!r} is {what} at {level.func!r}.{level.var}, but "
            f"{level.func!r} has no loop dimension {level.var!r} "
            f"(its loops are {consumer.schedule.dim_names()})"
        )


def validate_schedules(env: Dict[str, Function], order: Sequence[str],
                       output: Function) -> None:
    """Raise :class:`ScheduleError` for schedules that can never lower correctly."""
    if output.schedule.is_inlined():
        # The output always has loops; treat "inlined" as the default root.
        output.schedule.compute_root()

    for name in order:
        func = env.get(name)
        if func is None:
            continue
        func.validate_for_lowering()
        schedule = func.schedule

        if func is not output and schedule.is_inlined() and func.has_updates():
            raise ScheduleError(
                f"{func.name!r} has update definitions and cannot be inlined"
            )

        _validate_level(func, schedule.compute_level, env, "computed")
        _validate_level(func, schedule.store_level, env, "stored")

        if schedule.compute_level.is_root() and schedule.store_level.is_at():
            raise ScheduleError(
                f"{func.name!r} is computed at root but stored at "
                f"{schedule.store_level!r}; storage must be at or outside the compute level"
            )
        if schedule.compute_level.is_at() and schedule.store_level.is_inlined():
            raise ScheduleError(
                f"{func.name!r} has a compute level but no store level"
            )

        for dim in schedule.dims:
            if dim.for_type in (ForType.VECTORIZED, ForType.UNROLLED):
                if schedule.constant_extent(dim.var) is None:
                    raise ScheduleError(
                        f"dimension {dim.var!r} of {func.name!r} is "
                        f"{dim.for_type.value} but has no constant extent"
                    )
            if dim.is_rvar and dim.for_type != ForType.SERIAL:
                raise ScheduleError(
                    f"reduction dimension {dim.var!r} of {func.name!r} may not be "
                    f"{dim.for_type.value} unless the update is associative"
                )
