"""Schedule validation.

The autotuner generates schedules randomly and relies on invalid ones being
rejected (Section 5: "we reject any partially completed schedules that are
invalid").  This module performs the checks that can be done before lowering;
structural problems that depend on the synthesized loop nest (e.g. a store
level that does not enclose the compute level) are detected during lowering
itself and surface as :class:`~repro.core.schedule.ScheduleError`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.function import Function
from repro.core.schedule import ScheduleError
from repro.ir import expr as E
from repro.ir.visitor import IRVisitor
from repro.ir.stmt import ForType

__all__ = ["validate_schedules"]


def _validate_level(func: Function, level, env: Dict[str, Function], what: str) -> None:
    if not level.is_at():
        return
    consumer = env.get(level.func)
    if consumer is None:
        raise ScheduleError(
            f"{func.name!r} is {what} at {level.func!r}.{level.var}, but "
            f"{level.func!r} is not part of this pipeline"
        )
    if consumer.name == func.name:
        raise ScheduleError(f"{func.name!r} cannot be {what} at its own loops")
    if consumer.schedule.is_inlined():
        raise ScheduleError(
            f"{func.name!r} is {what} at a loop of {consumer.name!r}, "
            "which is inlined and therefore has no loops"
        )
    if not consumer.schedule.has_dim(level.var):
        raise ScheduleError(
            f"{func.name!r} is {what} at {level.func!r}.{level.var}, but "
            f"{level.func!r} has no loop dimension {level.var!r} "
            f"(its loops are {consumer.schedule.dim_names()})"
        )


class _HalideCallCollector(IRVisitor):
    def __init__(self):
        self.names: Set[str] = set()

    def visit_Call(self, node: E.Call):
        if node.call_type == E.CallType.HALIDE:
            self.names.add(node.name)
        for a in node.args:
            self.visit(a)


def _direct_uses(func: Function) -> List[Tuple[str, bool]]:
    """(callee, in_update) pairs for every function ``func`` reads.

    ``in_update`` distinguishes reads from the pure definition and reads from
    update stages: update-stage loop nests carry stage-suffixed loop names, so
    a producer computed at one of the consumer's *pure* loops does not enclose
    its update stages.
    """
    pure = _HalideCallCollector()
    if func.definition is not None:
        pure.visit(func.definition.value)
    update = _HalideCallCollector()
    for u in func.updates:
        update.visit(u.value)
        for a in u.args:
            update.visit(a)
    uses = [(name, False) for name in pure.names - {func.name}]
    uses += [(name, True) for name in update.names - {func.name}]
    return uses


def _effective_use_sites(name: str, env: Dict[str, Function],
                         consumers: Dict[str, List[Tuple[str, bool]]]
                         ) -> Set[Tuple[str, bool]]:
    """Non-inlined functions whose loop nests contain loads of ``name``.

    Inlined consumers are expanded transitively: their reads happen wherever
    *their* consumers compute.  ``in_update`` is true when the load lands in
    an update-stage nest of the site.
    """
    sites: Set[Tuple[str, bool]] = set()
    pending = list(consumers.get(name, []))
    seen = set()
    while pending:
        consumer, in_update = pending.pop()
        if (consumer, in_update) in seen:
            continue
        seen.add((consumer, in_update))
        func = env.get(consumer)
        if func is None:
            continue
        if func.schedule.is_inlined():
            for outer, outer_in_update in consumers.get(consumer, []):
                pending.append((outer, in_update or outer_in_update))
        else:
            sites.add((consumer, in_update))
    return sites


def _encloses(func: Function, level, site: str, in_update: bool,
              env: Dict[str, Function]) -> bool:
    """Whether loop ``level`` = (g, v) of ``func`` encloses the nest of ``site``."""
    g, v = level.func, level.var
    if site == g:
        # Loads in g's pure stage sit under every one of g's pure loops;
        # update-stage nests have their own (stage-suffixed) loop names and
        # are NOT under the pure loop the producer is computed at.
        return not in_update
    # Walk the site's compute_at chain upwards until it enters g (or root).
    current = site
    visited = set()
    while current not in visited:
        visited.add(current)
        func_at = env.get(current)
        if func_at is None:
            return False
        lvl = func_at.schedule.compute_level
        if not lvl.is_at():
            return False        # reached root without passing through g
        if lvl.func == g:
            # Entering g at loop w: (g, v) encloses it iff v is the same
            # loop or an outer one (dims are listed innermost first).
            order = env[g].schedule.dim_names() if g in env else []
            if v not in order or lvl.var not in order:
                return False
            return order.index(v) >= order.index(lvl.var)
        current = lvl.func
    return False


def _validate_compute_at_enclosure(env: Dict[str, Function]) -> None:
    """Reject compute_at levels that do not enclose every use of the function.

    The injection pass places a producer's realization inside one loop of one
    consumer; if another consumer's nest is not inside that loop, its loads
    would have no realization — a crash deep in flattening without this check.
    """
    consumers: Dict[str, List[Tuple[str, bool]]] = {}
    for name, func in env.items():
        for callee, in_update in _direct_uses(func):
            consumers.setdefault(callee, []).append((name, in_update))

    for name, func in env.items():
        level = func.schedule.compute_level
        if not level.is_at():
            continue
        for site, in_update in _effective_use_sites(name, env, consumers):
            if not _encloses(func, level, site, in_update, env):
                where = (f"the update stage(s) of {site!r}" if site == level.func
                         else f"{site!r}")
                raise ScheduleError(
                    f"{name!r} is computed at {level.func!r}.{level.var}, but it "
                    f"is also used by {where}, whose loops are not nested inside "
                    f"that level; compute {name!r} at an enclosing loop or at root"
                )


def validate_schedules(env: Dict[str, Function], order: Sequence[str],
                       output: Function) -> None:
    """Raise :class:`ScheduleError` for schedules that can never lower correctly."""
    if output.schedule.is_inlined():
        # The output always has loops; treat "inlined" as the default root.
        output.schedule.compute_root()

    for name in order:
        func = env.get(name)
        if func is None:
            continue
        func.validate_for_lowering()
        schedule = func.schedule

        if func is not output and schedule.is_inlined() and func.has_updates():
            raise ScheduleError(
                f"{func.name!r} has update definitions and cannot be inlined"
            )

        _validate_level(func, schedule.compute_level, env, "computed")
        _validate_level(func, schedule.store_level, env, "stored")

        if schedule.compute_level.is_root() and schedule.store_level.is_at():
            raise ScheduleError(
                f"{func.name!r} is computed at root but stored at "
                f"{schedule.store_level!r}; storage must be at or outside the compute level"
            )
        if schedule.compute_level.is_at() and schedule.store_level.is_inlined():
            raise ScheduleError(
                f"{func.name!r} has a compute level but no store level"
            )

        for dim in schedule.dims:
            if dim.for_type in (ForType.VECTORIZED, ForType.UNROLLED):
                if schedule.constant_extent(dim.var) is None:
                    raise ScheduleError(
                        f"dimension {dim.var!r} of {func.name!r} is "
                        f"{dim.for_type.value} but has no constant extent"
                    )
            if dim.is_rvar and dim.for_type != ForType.SERIAL:
                raise ScheduleError(
                    f"reduction dimension {dim.var!r} of {func.name!r} may not be "
                    f"{dim.for_type.value} unless the update is associative"
                )

        for fold_dim in schedule.storage_folds:
            # Folding needs storage of the function's own: an inlined stage
            # has none, and the output buffer belongs to the caller.
            if fold_dim not in func.args:
                raise ScheduleError(
                    f"storage_fold on {func.name!r}: no dimension {fold_dim!r} "
                    f"(its dimensions are {list(func.args)!r})"
                )
            if func is output:
                raise ScheduleError(
                    f"storage_fold on {func.name!r}: the output buffer is "
                    f"provided by the caller and cannot be folded"
                )
            if schedule.is_inlined():
                raise ScheduleError(
                    f"storage_fold on {func.name!r}: the function is inlined "
                    f"and has no storage to fold"
                )

    _validate_compute_at_enclosure(env)
