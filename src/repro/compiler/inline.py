"""Inlining of stages scheduled ``compute_inline``.

Inlining substitutes a producer's defining expression directly into each call
site, renaming the producer's pure variables to the call arguments.  It is the
finest-grained point of the fusion axis: values are recomputed at every use,
maximizing locality and parallelism at the cost of redundant work (the "total
fusion" strategy of Section 3.1).
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.substitute import substitute
from repro.core.function import Function
from repro.ir import expr as E
from repro.ir.mutator import IRMutator

__all__ = ["inline_function", "inline_all_inlined"]


class _Inliner(IRMutator):
    def __init__(self, function: Function):
        self.function = function

    def visit_Call(self, node: E.Call):
        args = [self.mutate(a) for a in node.args]
        if node.call_type == E.CallType.HALIDE and node.name == self.function.name:
            definition = self.function.definition
            replacements = {name: arg for name, arg in zip(definition.args, args)}
            body = substitute(definition.value, replacements)
            # The inlined body may itself contain calls to the function being
            # inlined only if the function is recursive, which pure stages
            # cannot be; no further rewriting needed.
            return body
        if all(a is b for a, b in zip(args, node.args)):
            return node
        return E.Call(node.type, node.name, args, node.call_type, node.target)


def inline_function(node, function: Function):
    """Replace every call to ``function`` inside ``node`` by its definition."""
    if not function.can_be_inlined():
        raise ValueError(
            f"function {function.name!r} has update definitions and cannot be inlined"
        )
    return _Inliner(function).mutate(node)


def inline_all_inlined(env: Dict[str, Function], order) -> Dict[str, Function]:
    """Inline every stage scheduled inline into its consumers.

    Returns a new environment containing only the non-inlined stages, whose
    definitions have had all inlined callees substituted away.  ``order`` is a
    realization order (producers first), so inlining proceeds producer-to-
    consumer and handles chains of inlined stages.
    """
    live: Dict[str, Function] = dict(env)
    for name in order:
        func = live.get(name)
        if func is None or func.schedule is None:
            continue
        if not func.schedule.is_inlined():
            continue
        # Substitute this function into every other stage's definitions.
        for other_name, other in live.items():
            if other_name == name:
                continue
            if other.definition is not None:
                other.definition.value = inline_function(other.definition.value, func)
            for update in other.updates:
                update.value = inline_function(update.value, func)
                update.args = [inline_function(a, func) for a in update.args]
        del live[name]
    return live
