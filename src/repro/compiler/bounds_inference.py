"""Bounds inference (Section 4.2 of the paper).

After lowering, loop bounds and allocation sizes refer to symbolic bounds
variables (``f.x.min``, ``f.x.extent``, ``f.x.min_realized``...).  This pass
walks the loop nest and injects let-statements defining them:

* at each **Realize** site, the allocation bounds are the box of coordinates
  touched anywhere inside the realization (calls from all consumers plus the
  footprint of the function's own update definitions);
* at each **produce/consume** site, the computed region is the box required by
  the consuming code at that loop level, evaluated by interval analysis of the
  index expressions of every call, given the bounds of all loops *inside* the
  site (loops outside remain free variables, so the definitions act as a
  preamble evaluated at each iteration of the enclosing loops — exactly the
  dynamic bounds evaluation the paper describes).

The output function's bounds are not inferred: they are free symbols bound by
the runtime to the requested output region.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.bounds import Box, box_touched
from repro.analysis.interval import Interval, bounds_of_expr_in_scope, interval_union
from repro.analysis.scope import Scope
from repro.compiler.schedule_functions import bound_var
from repro.core.function import Function
from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator

__all__ = ["bounds_inference", "BoundsError", "update_footprint"]


class BoundsError(RuntimeError):
    """Raised when a required region cannot be bounded."""


def update_footprint(func: Function) -> Optional[List[Interval]]:
    """The box written by a function's update definitions, one interval per dim.

    Dimensions whose coordinate expression is just a pure variable (or whose
    bounds cannot be determined) get an unbounded interval, meaning "no larger
    than the required region"; scatter dimensions (e.g. a histogram bucket
    index) get the interval implied by the scattering expression.
    """
    if not func.updates:
        return None
    result: List[Interval] = [Interval.everything() for _ in func.args]
    any_bounded = False
    for update in func.updates:
        scope: Scope = Scope()
        if update.rdom is not None:
            for rvar in update.rdom.variables:
                scope.push(rvar.name, Interval(rvar.min, rvar.min + rvar.extent - 1))
        for i, arg in enumerate(update.args):
            if isinstance(arg, E.Variable) and arg.name in func.args:
                continue  # covered by the required region
            interval = bounds_of_expr_in_scope(arg, scope)
            if interval.is_bounded():
                any_bounded = True
                if result[i].is_everything():
                    result[i] = interval
                else:
                    result[i] = interval_union(result[i], interval)
    return result if any_bounded else None


def _box_with_footprint(box: Optional[Box], footprint: Optional[List[Interval]],
                        dims: int) -> Optional[Box]:
    if footprint is None:
        return box
    if box is None:
        return Box(footprint)
    merged = []
    for i in range(dims):
        extra = footprint[i]
        if extra.is_bounded():
            merged.append(interval_union(box[i], extra))
        else:
            merged.append(box[i])
    return Box(merged)


def _define_bounds(name: str, dims: Sequence[str], box: Box, body: S.Stmt,
                   suffix_min: str, suffix_max: str, suffix_extent: str) -> S.Stmt:
    """Wrap ``body`` in let-statements defining a function's bounds from ``box``."""
    lets = []
    for dim, interval in zip(dims, box):
        if interval.min is None or interval.max is None:
            raise BoundsError(
                f"the required region of {name!r} along {dim!r} is unbounded; "
                "clamp the index expressions that read it (see Section 4.2 of the paper)"
            )
        min_name = f"{name}.{dim}.{suffix_min}"
        max_name = f"{name}.{dim}.{suffix_max}"
        extent_name = f"{name}.{dim}.{suffix_extent}"
        extent_value = (
            E.Variable(max_name, interval.max.type.element_of())
            - E.Variable(min_name, interval.min.type.element_of())
            + 1
        )
        lets.append((extent_name, extent_value))
        lets.append((max_name, interval.max))
        lets.append((min_name, interval.min))
    for let_name, let_value in lets:
        body = S.LetStmt(let_name, let_value, body)
    return body


class _BoundsInference(IRMutator):
    def __init__(self, env: Dict[str, Function], output_names: Set[str]):
        self.env = env
        self.output_names = output_names
        self._footprints: Dict[str, Optional[List[Interval]]] = {}

    def _footprint(self, name: str) -> Optional[List[Interval]]:
        if name not in self._footprints:
            func = self.env.get(name)
            self._footprints[name] = update_footprint(func) if func is not None else None
        return self._footprints[name]

    # -- allocation bounds at Realize sites --------------------------------
    def visit_Realize(self, node: S.Realize):
        # Mutate the body first so that bounds definitions of nested stages are
        # already in place; the box computation below then resolves their loop
        # bounds instead of treating them as free symbols.
        body = self.mutate(node.body)
        result = S.Realize(node.name, node.type, node.bounds, body)
        if node.name in self.output_names or node.name not in self.env:
            return result
        func = self.env[node.name]
        box = box_touched(body, node.name, consider_calls=True, consider_provides=False)
        box = _box_with_footprint(box, self._footprint(node.name), func.dimensions())
        if box is None:
            raise BoundsError(f"{node.name!r} is realized but never used")
        return _define_bounds(node.name, func.args, box, result,
                              "min_realized", "max_realized", "extent_realized")

    # -- computed-region bounds at produce/consume sites --------------------
    def visit_Block(self, node: S.Block):
        new_stmts = [self.mutate(s) for s in node.stmts]
        result = S.Block(new_stmts)

        produced_here = []
        for s in new_stmts:
            if isinstance(s, S.ProducerConsumer) and s.is_producer:
                if s.name not in self.output_names and s.name in self.env:
                    produced_here.append(s.name)
        block_stmts = list(new_stmts)
        for name in produced_here:
            func = self.env[name]
            # The region computed must cover the region consumed by subsequent
            # stages: the box comes from the consume side only (reads the
            # producer makes of itself in update definitions do not grow the
            # region it must initialize, only its allocation).
            box = None
            for s in block_stmts:
                if isinstance(s, S.ProducerConsumer) and not s.is_producer and s.name == name:
                    consumer_box = box_touched(s, name, consider_calls=True,
                                               consider_provides=False)
                    if consumer_box is not None:
                        from repro.analysis.bounds import box_union

                        box = box_union(box, consumer_box)
            box = _box_with_footprint(box, self._footprint(name), func.dimensions())
            if box is None:
                raise BoundsError(f"{name!r} is computed but never used")
            result = _define_bounds(name, func.args, box, result, "min", "max", "extent")
        return result


def bounds_inference(stmt: S.Stmt, env: Dict[str, Function],
                     output_names: Sequence[str]) -> S.Stmt:
    """Inject definitions for every symbolic bound variable in ``stmt``."""
    return _BoundsInference(env, set(output_names)).mutate(stmt)
