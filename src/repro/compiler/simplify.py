"""Algebraic simplification and dead-let elimination.

Bounds inference produces a lot of structurally redundant arithmetic
(``min(x + 1 - 1, x)``, ``(y * 4) / 4`` ...).  This pass performs the standard
constant folding and pattern-based rewrites the paper mentions in Section 4.6,
plus substitution of cheap let bindings and removal of unused ones, so the
backends see compact expressions.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator
from repro.ir.visitor import IRVisitor, children_of

__all__ = ["simplify", "simplify_expr", "used_variables"]


class _VariableUses(IRVisitor):
    def __init__(self):
        self.names: Set[str] = set()

    def visit_Variable(self, node):
        self.names.add(node.name)

    def visit_Var(self, node):
        self.names.add(node.name)

    def visit_RVar(self, node):
        self.names.add(node.name)


def used_variables(node) -> Set[str]:
    """The set of variable names that occur anywhere in ``node``."""
    uses = _VariableUses()
    uses.visit(node)
    return uses.names


def _is_cheap(e: E.Expr) -> bool:
    """Whether substituting a let value at every use is safe and profitable."""
    if isinstance(e, (E.IntImm, E.FloatImm, E.Variable)):
        return True
    if isinstance(e, (E.Add, E.Sub, E.Mul)):
        return (
            isinstance(e.a, (E.IntImm, E.FloatImm, E.Variable))
            and isinstance(e.b, (E.IntImm, E.FloatImm, E.Variable))
        )
    return False


class _Simplifier(IRMutator):
    def __init__(self, let_substitutions: Optional[Dict[str, E.Expr]] = None):
        self.lets: Dict[str, E.Expr] = dict(let_substitutions or {})

    # -- expressions --------------------------------------------------------
    def visit_Variable(self, node: E.Variable):
        return self.lets.get(node.name, node)

    def visit_Var(self, node):
        return self.lets.get(node.name, node)

    def visit_RVar(self, node):
        return self.lets.get(node.name, node)

    def _binary(self, node, ctor):
        a = self.mutate(node.a)
        b = self.mutate(node.b)
        return ctor(a, b)

    def visit_Add(self, node):
        result = self._binary(node, lambda a, b: op.make_binary(E.Add, a, b))
        return _rewrite_add(result)

    def visit_Sub(self, node):
        result = self._binary(node, lambda a, b: op.make_binary(E.Sub, a, b))
        return _rewrite_sub(result)

    def visit_Mul(self, node):
        return self._binary(node, lambda a, b: op.make_binary(E.Mul, a, b))

    def visit_Div(self, node):
        return self._binary(node, lambda a, b: op.make_binary(E.Div, a, b))

    def visit_Mod(self, node):
        return self._binary(node, lambda a, b: op.make_binary(E.Mod, a, b))

    def visit_Min(self, node):
        result = self._binary(node, op.min_)
        return _rewrite_minmax(result)

    def visit_Max(self, node):
        result = self._binary(node, op.max_)
        return _rewrite_minmax(result)

    def visit_EQ(self, node):
        return self._binary(node, lambda a, b: op.make_compare(E.EQ, a, b))

    def visit_NE(self, node):
        return self._binary(node, lambda a, b: op.make_compare(E.NE, a, b))

    def visit_LT(self, node):
        return self._binary(node, lambda a, b: op.make_compare(E.LT, a, b))

    def visit_LE(self, node):
        return self._binary(node, lambda a, b: op.make_compare(E.LE, a, b))

    def visit_GT(self, node):
        return self._binary(node, lambda a, b: op.make_compare(E.GT, a, b))

    def visit_GE(self, node):
        return self._binary(node, lambda a, b: op.make_compare(E.GE, a, b))

    def visit_And(self, node):
        return self._binary(node, lambda a, b: op.make_logical(E.And, a, b))

    def visit_Or(self, node):
        return self._binary(node, lambda a, b: op.make_logical(E.Or, a, b))

    def visit_Not(self, node):
        return op.make_not(self.mutate(node.a))

    def visit_Select(self, node):
        return op.make_select(
            self.mutate(node.condition),
            self.mutate(node.true_value),
            self.mutate(node.false_value),
        )

    def visit_Cast(self, node):
        return op.cast(node.type, self.mutate(node.value))

    def visit_Let(self, node: E.Let):
        value = self.mutate(node.value)
        if _is_cheap(value):
            saved = self.lets.get(node.name)
            self.lets[node.name] = value
            body = self.mutate(node.body)
            if saved is None:
                self.lets.pop(node.name, None)
            else:
                self.lets[node.name] = saved
            return body
        body = self.mutate(node.body)
        if node.name not in used_variables(body):
            return body
        return E.Let(node.name, value, body)

    # -- statements ----------------------------------------------------------
    def visit_LetStmt(self, node: S.LetStmt):
        value = self.mutate(node.value)
        body = self.mutate(node.body)
        if node.name not in used_variables(body):
            return body
        return S.LetStmt(node.name, value, body)

    def visit_For(self, node: S.For):
        mn = self.mutate(node.min)
        extent = self.mutate(node.extent)
        body = self.mutate(node.body)
        extent_value = op.const_value(extent)
        if extent_value is not None and extent_value <= 0:
            return S.Evaluate(op.const(0))
        if extent_value == 1 and node.for_type in (S.ForType.SERIAL, S.ForType.UNROLLED):
            from repro.compiler.substitute import substitute_name

            return self.mutate(substitute_name(body, node.name, mn))
        return S.For(node.name, mn, extent, node.for_type, body)

    def visit_IfThenElse(self, node: S.IfThenElse):
        cond = self.mutate(node.condition)
        value = op.const_value(cond)
        if value is not None:
            return self.mutate(node.then_case if value else node.else_case)
        return S.IfThenElse(cond, self.mutate(node.then_case), self.mutate(node.else_case))


def _rewrite_add(e: E.Expr) -> E.Expr:
    """Fold nested constant offsets: ``(x + a) + b -> x + (a + b)``."""
    if isinstance(e, E.Add) and op.is_const(e.b) and isinstance(e.a, E.Add) and op.is_const(e.a.b):
        return op.make_binary(E.Add, e.a.a, op.make_binary(E.Add, e.a.b, e.b))
    if isinstance(e, E.Add) and op.is_const(e.b) and isinstance(e.a, E.Sub) and op.is_const(e.a.b):
        return op.make_binary(E.Add, e.a.a, op.make_binary(E.Sub, e.b, e.a.b))
    return e


def _rewrite_sub(e: E.Expr) -> E.Expr:
    """Fold ``(x + a) - b`` and ``x - x`` style patterns."""
    if isinstance(e, E.Sub):
        if e.a == e.b:
            return op.const(0, e.type)
        if op.is_const(e.b) and isinstance(e.a, E.Add) and op.is_const(e.a.b):
            return op.make_binary(E.Add, e.a.a, op.make_binary(E.Sub, e.a.b, e.b))
    return e


def _rewrite_minmax(e: E.Expr) -> E.Expr:
    """Collapse ``min(x, x)``, ``min(min(x, a), b)`` with constant a/b, etc."""
    if isinstance(e, (E.Min, E.Max)):
        if e.a == e.b:
            return e.a
        ctor = op.min_ if isinstance(e, E.Min) else op.max_
        if op.is_const(e.b) and isinstance(e.a, type(e)) and op.is_const(e.a.b):
            return ctor(e.a.a, ctor(e.a.b, e.b))
    return e


def simplify(node, let_substitutions: Optional[Dict[str, E.Expr]] = None):
    """Simplify a statement or expression tree."""
    return _Simplifier(let_substitutions).mutate(node)


def simplify_expr(e: E.Expr, let_substitutions: Optional[Dict[str, E.Expr]] = None) -> E.Expr:
    """Simplify an expression (alias of :func:`simplify` for readability)."""
    return _Simplifier(let_substitutions).mutate(e)
