"""The compiler: lowering, bounds inference, and the loop-level optimizations.

The passes run in the order described in Section 4 of the paper (see
:func:`repro.compiler.lower.lower`):

1. inline stages scheduled inline,
2. lowering / loop synthesis (:mod:`repro.compiler.schedule_functions`),
3. bounds inference by interval analysis (:mod:`repro.compiler.bounds_inference`),
4. sliding-window optimization and storage folding,
5. flattening of multi-dimensional sites to 1-D buffer indices,
6. unrolling and vectorization,
7. simplification, ready for a backend (the interpreter or the Python code
   generator in :mod:`repro.runtime`).
"""

from repro.compiler.lower import LoweredPipeline, LoweringOptions, lower

__all__ = ["lower", "LoweredPipeline", "LoweringOptions"]
