"""Variable substitution over IR trees."""

from __future__ import annotations

from typing import Dict, Union

from repro.ir import expr as E
from repro.ir.mutator import IRMutator

__all__ = ["substitute", "substitute_name"]


class _Substituter(IRMutator):
    def __init__(self, replacements: Dict[str, E.Expr]):
        self.replacements = replacements

    def visit_Variable(self, node: E.Variable):
        return self.replacements.get(node.name, node)

    def visit_Var(self, node):  # repro.lang.Var subclasses Variable
        return self.replacements.get(node.name, node)

    def visit_RVar(self, node):
        return self.replacements.get(node.name, node)

    def visit_Let(self, node: E.Let):
        value = self.mutate(node.value)
        if node.name in self.replacements:
            # The let shadows the substitution inside its body.
            inner = _Substituter({k: v for k, v in self.replacements.items() if k != node.name})
            body = inner.mutate(node.body)
        else:
            body = self.mutate(node.body)
        if value is node.value and body is node.body:
            return node
        return E.Let(node.name, value, body)


def substitute(node, replacements: Dict[str, E.Expr]):
    """Replace free variables named in ``replacements`` throughout ``node``.

    Works on both expressions and statements.  Let-bound occurrences are
    respected (inner bindings shadow the substitution).
    """
    if not replacements:
        return node
    return _Substituter(dict(replacements)).mutate(node)


def substitute_name(node, old: str, new: E.Expr):
    """Replace the single variable ``old`` with ``new`` throughout ``node``."""
    return substitute(node, {old: new})
