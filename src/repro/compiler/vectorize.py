"""Vectorization (Section 4.5 of the paper).

A loop of constant extent ``k`` scheduled as vectorized is completely replaced
by a single statement: occurrences of the loop index become the vector
``ramp(min, 1, k)``, and a type-coercion pass promotes any scalars combined
with vectors to ``k``-wide broadcasts.  Loads of affine indices become dense
or strided vector loads; everything else becomes a gather.  Vectors are never
split back into bundles of scalars.
"""

from __future__ import annotations

from repro.ir import expr as E
from repro.ir import op
from repro.ir import stmt as S
from repro.ir.mutator import IRMutator

__all__ = ["vectorize_loops", "VectorizeError"]


class VectorizeError(RuntimeError):
    """Raised when a vectorized loop cannot be widened."""


def _widen(e: E.Expr, lanes: int) -> E.Expr:
    """Broadcast a scalar expression to ``lanes`` lanes (no-op for vectors)."""
    if e.type.lanes == lanes:
        return e
    if e.type.lanes != 1:
        raise VectorizeError(
            f"cannot combine a {e.type.lanes}-wide vector with a {lanes}-wide context"
        )
    return E.Broadcast(e, lanes)


class _VectorSubs(IRMutator):
    """Substitute a loop variable with a ramp and widen affected expressions."""

    def __init__(self, var: str, replacement: E.Expr):
        self.var = var
        self.replacement = replacement
        self.lanes = replacement.type.lanes
        self.widened_lets = set()

    # -- leaves -------------------------------------------------------------
    def visit_Variable(self, node: E.Variable):
        if node.name == self.var:
            return self.replacement
        if node.name in self.widened_lets:
            return E.Variable(node.name, node.type.with_lanes(self.lanes))
        return node

    visit_Var = visit_Variable
    visit_RVar = visit_Variable

    # -- expressions that must re-balance vector widths ----------------------
    def _binary(self, node, klass):
        a, b = self.mutate(node.a), self.mutate(node.b)
        if a is node.a and b is node.b:
            return node
        lanes = max(a.type.lanes, b.type.lanes)
        if lanes > 1:
            a, b = _widen(a, lanes), _widen(b, lanes)
        return klass(a, b, node.type.with_lanes(lanes))

    def visit_Add(self, node):
        return self._binary(node, E.Add)

    def visit_Sub(self, node):
        return self._binary(node, E.Sub)

    def visit_Mul(self, node):
        return self._binary(node, E.Mul)

    def visit_Div(self, node):
        return self._binary(node, E.Div)

    def visit_Mod(self, node):
        return self._binary(node, E.Mod)

    def visit_Min(self, node):
        return self._binary(node, E.Min)

    def visit_Max(self, node):
        return self._binary(node, E.Max)

    def visit_EQ(self, node):
        return self._binary(node, E.EQ)

    def visit_NE(self, node):
        return self._binary(node, E.NE)

    def visit_LT(self, node):
        return self._binary(node, E.LT)

    def visit_LE(self, node):
        return self._binary(node, E.LE)

    def visit_GT(self, node):
        return self._binary(node, E.GT)

    def visit_GE(self, node):
        return self._binary(node, E.GE)

    def visit_And(self, node):
        return self._binary(node, E.And)

    def visit_Or(self, node):
        return self._binary(node, E.Or)

    def visit_Select(self, node):
        c = self.mutate(node.condition)
        t = self.mutate(node.true_value)
        f = self.mutate(node.false_value)
        lanes = max(c.type.lanes, t.type.lanes, f.type.lanes)
        if lanes > 1:
            c, t, f = _widen(c, lanes), _widen(t, lanes), _widen(f, lanes)
        return E.Select(c, t, f)

    def visit_Cast(self, node):
        value = self.mutate(node.value)
        if value is node.value:
            return node
        return E.Cast(node.type.with_lanes(value.type.lanes), value)

    def visit_Call(self, node: E.Call):
        args = [self.mutate(a) for a in node.args]
        if all(a is b for a, b in zip(args, node.args)):
            return node
        lanes = max(a.type.lanes for a in args) if args else 1
        if node.call_type == E.CallType.INTRINSIC and lanes > 1:
            args = [_widen(a, lanes) for a in args]
        return E.Call(node.type.with_lanes(lanes), node.name, args, node.call_type, node.target)

    def visit_Let(self, node: E.Let):
        value = self.mutate(node.value)
        widened = value.type.lanes > 1
        if widened:
            self.widened_lets.add(node.name)
        body = self.mutate(node.body)
        if widened:
            self.widened_lets.discard(node.name)
        if value is node.value and body is node.body:
            return node
        return E.Let(node.name, value, body)

    # -- statements ----------------------------------------------------------
    def visit_LetStmt(self, node: S.LetStmt):
        value = self.mutate(node.value)
        widened = value.type.lanes > 1
        if widened:
            self.widened_lets.add(node.name)
        body = self.mutate(node.body)
        if widened:
            self.widened_lets.discard(node.name)
        if value is node.value and body is node.body:
            return node
        return S.LetStmt(node.name, value, body)

    def visit_Store(self, node: S.Store):
        index = self.mutate(node.index)
        value = self.mutate(node.value)
        lanes = max(index.type.lanes, value.type.lanes)
        if lanes > 1:
            index, value = _widen(index, lanes), _widen(value, lanes)
        if index is node.index and value is node.value:
            return node
        return S.Store(node.name, value, index)

    def visit_For(self, node: S.For):
        # Nested loops inside a vectorized body keep scalar bounds: take the
        # base lane of any vectorized bound (Halide does the same for loops
        # over vectorized dimensions' interiors).
        mn = self.mutate(node.min)
        extent = self.mutate(node.extent)
        if mn.type.lanes > 1 or extent.type.lanes > 1:
            raise VectorizeError(
                f"loop {node.name!r} nested inside a vectorized loop has vector bounds; "
                "reorder the vectorized dimension innermost"
            )
        body = self.mutate(node.body)
        if mn is node.min and extent is node.extent and body is node.body:
            return node
        return S.For(node.name, mn, extent, node.for_type, body)

    def visit_IfThenElse(self, node: S.IfThenElse):
        condition = self.mutate(node.condition)
        if condition.type.lanes > 1:
            raise VectorizeError(
                "a bounds guard became a vector condition inside a vectorized loop; "
                "use TailStrategy.ROUND_UP for vectorized dimensions"
            )
        return S.IfThenElse(condition, self.mutate(node.then_case),
                            self.mutate(node.else_case))


class _Vectorizer(IRMutator):
    def visit_For(self, node: S.For):
        body = self.mutate(node.body)
        if node.for_type != S.ForType.VECTORIZED:
            if body is node.body:
                return node
            return S.For(node.name, node.min, node.extent, node.for_type, body)
        extent = op.const_value(node.extent)
        if extent is None:
            raise VectorizeError(
                f"loop {node.name!r} is scheduled vectorized but its extent "
                f"{node.extent!r} is not a compile-time constant"
            )
        lanes = int(extent)
        if lanes == 1:
            return self.mutate(
                S.For(node.name, node.min, node.extent, S.ForType.SERIAL, body)
            )
        ramp = E.Ramp(node.min, op.const(1), lanes)
        return _VectorSubs(node.name, ramp).mutate(body)


def vectorize_loops(stmt: S.Stmt) -> S.Stmt:
    """Replace all vectorized loops by single wide statements."""
    return _Vectorizer().mutate(stmt)
