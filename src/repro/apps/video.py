"""Streaming video pipeline: spatial denoise + temporal average + tonemap.

The first app with a scheduled *time* dimension.  The input is a rolling
buffer of ``chunk + window`` frames (``window`` frames of temporal history in
front of each chunk — the layout :func:`repro.streaming.realize_stream`
advances); the output is ``chunk`` frames:

    denoise_xy(x, y, t) = 5-point spatial cross average        (per frame)
    denoise_t(x, y, t)  = mean of denoise_xy over t .. t+window (temporal)
    tonemap(x, y, t)    = Reinhard curve d / (1 + d)

Under the streaming schedules ``denoise_xy`` is stored at root but computed
per time step, so the sliding-window pass computes each frame's spatial
denoise exactly once and storage folding keeps only a temporal-window-sized
ring of planes live — the bounded-memory machinery of Section 4.3 applied
along time instead of scanlines.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, Var, repeat_edge

__all__ = ["make_video", "video_schedules", "DEFAULT_WINDOW"]

#: Temporal window of the denoiser: each output frame averages this many
#: *previous* frames plus the current one.
DEFAULT_WINDOW = 2


def video_schedules(window: int = DEFAULT_WINDOW) -> Dict[str, Schedule]:
    """The named schedule family of the video app.

    ``streaming`` relies on the automatic storage-folding pass (fold rounded
    to a power of two); ``streaming_folded`` forces the exact minimal ring of
    ``window + 1`` planes through an explicit ``storage_fold`` directive —
    the directive whose legality lowering validates (an undersized factor or
    an unbounded window raises ``ScheduleError``).
    """
    def temporal(s: Schedule) -> Schedule:
        return (s
                .func("tonemap").reorder("x", "y", "t")
                .func("denoise_t").compute_at("tonemap", "t")
                .func("denoise_xy").store_root().compute_at("tonemap", "t")
                .schedule)

    return {
        # Every stage fully evaluated before the next: peak memory carries
        # whole per-stage volumes (O(chunk) frames of intermediates).
        "breadth_first": (Schedule()
                          .func("denoise_xy").compute_root()
                          .func("denoise_t").compute_root()
                          .schedule),
        # Time-outermost + store_root/compute_at(t): sliding window along t,
        # storage automatically folded to a power-of-two ring.
        "streaming": temporal(Schedule()),
        # Same, with the ring forced to exactly window+1 planes.
        "streaming_folded": temporal(
            Schedule().func("denoise_xy").storage_fold("t", window + 1)),
        # Same ring, spatial parallelism inside each time step (the t loop
        # itself must stay serial — that is what the fold trades away).
        "streaming_parallel": temporal(
            Schedule().func("denoise_xy").storage_fold("t", window + 1)
            .func("tonemap").parallel("y")),
    }


def make_video(width: int = 32, height: int = 24, chunk: int = 8,
               window: int = DEFAULT_WINDOW, name: str = "video") -> AppPipeline:
    """Build the video pipeline for ``chunk``-frame runs with ``window`` history.

    The input buffer ``frames`` holds ``chunk + window`` frames and is a
    zero-filled placeholder: real frame data is bound per run (``inputs=``)
    by :func:`repro.streaming.realize_stream`, which carries the last
    ``window`` frames of each chunk into the front of the next.
    """
    if chunk < 1 or window < 0:
        raise ValueError("chunk must be >= 1 and window >= 0")
    placeholder = np.zeros((width, height, chunk + window), dtype=np.float32)
    frames = Buffer(placeholder, name="frames")
    clamped = repeat_edge(frames, name="frames_clamped")

    x, y, t = Var("x"), Var("y"), Var("t")
    denoise_xy = Func("denoise_xy")
    denoise_t = Func("denoise_t")
    tonemap = Func("tonemap")

    denoise_xy[x, y, t] = (clamped[x - 1, y, t] + clamped[x, y, t]
                           + clamped[x + 1, y, t] + clamped[x, y - 1, t]
                           + clamped[x, y + 1, t]) / 5.0
    # Output frame t sits at buffer time t + window; averaging buffer times
    # t .. t + window therefore reaches `window` frames into the past.
    acc = denoise_xy[x, y, t]
    for dt in range(1, window + 1):
        acc = acc + denoise_xy[x, y, t + dt]
    denoise_t[x, y, t] = acc / float(window + 1)
    tonemap[x, y, t] = denoise_t[x, y, t] / (1.0 + denoise_t[x, y, t])

    return AppPipeline(
        name=name,
        output=tonemap,
        funcs={"frames_clamped": clamped, "denoise_xy": denoise_xy,
               "denoise_t": denoise_t, "tonemap": tonemap},
        algorithm_lines=3,
        schedules=video_schedules(window),
        default_size=[width, height, chunk],
    )
