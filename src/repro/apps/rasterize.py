"""Scanline rasterization with ordered alpha blending.

A primitive list (axis-aligned boxes with fractional edges, each carrying a
value and an opacity) is composited over a procedural background in list
order.  Per pixel, coverage is the fractional overlap of the box with the
pixel square, and each primitive blends ``image = image * (1 - a) + value * a``
— the premultiplied-alpha "over" operator, whose result depends on the
primitive *order*, so every schedule of the update stage must preserve it.

The update reads the primitive buffer at the computed coordinate ``r`` (the
reduction index), exercising gather loads inside an update definition, and
the ``parallel_tiles`` schedule hoists the primitive loop outermost
(``rdom_outer``) so the per-primitive image sweep runs as parallel tiles.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, RDom, Var, cast, clamp, max_, min_
from repro.types import Float

__all__ = ["make_rasterize", "default_primitives", "RASTERIZE_SCHEDULES"]


#: The named schedule family swept by tests and benchmarks.
RASTERIZE_SCHEDULES: Dict[str, Schedule] = {
    # Background materialized first, then the blend sweeps primitives with
    # the default nest (primitive loop innermost per pixel).
    "breadth_first": Schedule().func("background").compute_root().schedule,
    # Pure init stage tiled; the update nest is untouched.
    "tiled": (Schedule()
              .func("background").compute_root()
              .func("image").tile("x", "y", "xo", "yo", "xi", "yi", 8, 8)
              .schedule),
    # Primitive loop hoisted outermost; the per-primitive image sweep is
    # tiled and its hoisted y loop runs in parallel (the PARALLEL mark on yo
    # propagates to the update's hoisted y loop through rdom_outer).
    "parallel_tiles": (Schedule()
                       .func("background").compute_root()
                       .func("image").tile("x", "y", "xo", "yo", "xi", "yi", 8, 8)
                       .parallel("yo").rdom_outer()
                       .schedule),
}


def default_primitives(width: int, height: int, count: int = 12,
                       seed: int = 7) -> np.ndarray:
    """A deterministic primitive list: rows of (x0, y0, x1, y1, value, alpha).

    Boxes have fractional edges (sub-pixel coverage), overlap each other, and
    some hang off the image edges — the cases where coverage clamping and
    blend ordering actually matter.
    """
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(-2.0, width - 1.0, count)
    y0 = rng.uniform(-2.0, height - 1.0, count)
    x1 = x0 + rng.uniform(0.5, max(1.0, width * 0.6), count)
    y1 = y0 + rng.uniform(0.5, max(1.0, height * 0.6), count)
    value = rng.uniform(0.0, 1.0, count)
    alpha = rng.uniform(0.1, 1.0, count)
    return np.stack([x0, y0, x1, y1, value, alpha], axis=1).astype(np.float32)


def make_rasterize(width: int, height: int,
                   prims: Optional[np.ndarray] = None,
                   name: str = "rasterize") -> AppPipeline:
    """Build the rasterizer over a concrete primitive list.

    ``prims`` is a float32 array of shape (count, 6) with rows
    (x0, y0, x1, y1, value, alpha); :func:`default_primitives` supplies a
    deterministic list when omitted.
    """
    if prims is None:
        prims = default_primitives(width, height)
    prims = np.ascontiguousarray(prims, dtype=np.float32)
    if prims.ndim != 2 or prims.shape[1] != 6:
        raise ValueError(f"prims must have shape (count, 6), got {prims.shape}")
    prims_buf = Buffer(prims, name="prims")

    x, y = Var("x"), Var("y")
    background = Func("background")
    background[x, y] = cast(Float(32), (x + y) % 8) / 8.0

    image = Func("image")
    image[x, y] = background[x, y]

    r = RDom(0, prims.shape[0], name="r")
    x0 = prims_buf[r.x, 0]
    y0 = prims_buf[r.x, 1]
    x1 = prims_buf[r.x, 2]
    y1 = prims_buf[r.x, 3]
    value = prims_buf[r.x, 4]
    alpha = prims_buf[r.x, 5]
    fx = cast(Float(32), x)
    fy = cast(Float(32), y)
    covx = clamp(min_(x1, fx + 1.0) - max_(x0, fx), 0.0, 1.0)
    covy = clamp(min_(y1, fy + 1.0) - max_(y0, fy), 0.0, 1.0)
    a = covx * covy * alpha
    image[x, y] = image[x, y] * (1.0 - a) + value * a

    return AppPipeline(
        name=name,
        output=image,
        funcs={"background": background, "image": image},
        algorithm_lines=6,
        schedules=dict(RASTERIZE_SCHEDULES),
        default_size=[width, height],
    )
