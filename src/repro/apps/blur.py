"""The two-stage 3x3 box blur of Section 3.1 — the paper's running example.

The algorithm is two lines; the interesting part is the family of schedules
from Figures 2-4: breadth-first, full fusion, sliding window, overlapping
tiles, and sliding windows within tiles.  Each is provided as a named schedule
so the Figure 3 / Figure 4 benchmarks can sweep them.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, Var, repeat_edge

__all__ = ["make_blur", "BLUR_SCHEDULES", "tiled_blur_schedule", "sliding_in_tiles_schedule"]


def tiled_blur_schedule(tile: int = 32, vectorize: bool = True) -> Schedule:
    """Overlapping tiles processed in parallel (redundant work on tile edges)."""
    s = (Schedule()
         .func("blur_y").tile("x", "y", "xo", "yo", "xi", "yi", tile, tile).parallel("yo")
         .func("blur_x").compute_at("blur_y", "xo"))
    if vectorize:
        s = s.func("blur_y").vectorize("xi", 4).func("blur_x").vectorize("x", 4)
    return s.schedule


def sliding_in_tiles_schedule(strip: int = 8) -> Schedule:
    """Strips of scanlines in parallel, sliding window within each strip."""
    return (Schedule()
            .func("blur_y").split("y", "yo", "yi", strip).parallel("yo")
            .func("blur_x").store_at("blur_y", "yo").compute_at("blur_y", "yi")
            .schedule)


#: The Figure 2-4 schedule family, as first-class serializable Schedule data.
BLUR_SCHEDULES: Dict[str, Schedule] = {
    # Each stage entirely evaluated before the next (the library-call strategy).
    "breadth_first": Schedule().func("blur_x").compute_root().schedule,
    # Values computed on the fly each time they are needed (inlining).
    "full_fusion": Schedule().func("blur_x").compute_inline().schedule,
    # Values computed when first needed, kept until no longer useful.
    "sliding_window": (Schedule()
                       .func("blur_x").store_root().compute_at("blur_y", "y")
                       .schedule),
    "tiled": tiled_blur_schedule(),
    "tiled_novec": tiled_blur_schedule(vectorize=False),
    "sliding_in_tiles": sliding_in_tiles_schedule(),
    # A schedule equivalent to the expert-tuned one the paper's tuner beat.
    "tuned": (Schedule()
              .func("blur_y").tile("x", "y", "xo", "yo", "xi", "yi", 64, 32)
              .parallel("yo").vectorize("xi", 4)
              .func("blur_x").store_at("blur_y", "yo").compute_at("blur_y", "yi")
              .vectorize("x", 4)
              .schedule),
    # Map tiles to GPU blocks and intra-tile pixels to GPU threads.
    "gpu": (Schedule()
            .func("blur_y").gpu_tile("x", "y", "xi", "yi", 16, 16)
            .func("blur_x").compute_at("blur_y", "x_blk")
            .schedule),
}


def make_blur(image: np.ndarray, name: str = "blur") -> AppPipeline:
    """Build the two-stage blur over a concrete input image.

    ``image`` is a float32 array of shape (width, height).
    """
    image = np.ascontiguousarray(image, dtype=np.float32)
    input_buffer = Buffer(image, name="input")
    clamped = repeat_edge(input_buffer, name="input_clamped")

    x, y = Var("x"), Var("y")
    blur_x = Func("blur_x")
    blur_y = Func("blur_y")
    blur_x[x, y] = (clamped[x - 1, y] + clamped[x, y] + clamped[x + 1, y]) / 3.0
    blur_y[x, y] = (blur_x[x, y - 1] + blur_x[x, y] + blur_x[x, y + 1]) / 3.0

    return AppPipeline(
        name=name,
        output=blur_y,
        funcs={"input_clamped": clamped, "blur_x": blur_x, "blur_y": blur_y},
        algorithm_lines=2,
        schedules=dict(BLUR_SCHEDULES),
        default_size=[image.shape[0], image.shape[1]],
    )
