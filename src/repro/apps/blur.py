"""The two-stage 3x3 box blur of Section 3.1 — the paper's running example.

The algorithm is two lines; the interesting part is the family of schedules
from Figures 2-4: breadth-first, full fusion, sliding window, overlapping
tiles, and sliding windows within tiles.  Each is provided as a named schedule
so the Figure 3 / Figure 4 benchmarks can sweep them.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.common import AppPipeline
from repro.lang import Buffer, Func, Var, repeat_edge

__all__ = ["make_blur", "BLUR_SCHEDULES"]


def _schedule_breadth_first(funcs: Dict[str, Func]) -> None:
    """Each stage entirely evaluated before the next (the library-call strategy)."""
    funcs["blur_x"].compute_root()


def _schedule_full_fusion(funcs: Dict[str, Func]) -> None:
    """Values computed on the fly each time they are needed (inlining)."""
    funcs["blur_x"].compute_inline()


def _schedule_sliding_window(funcs: Dict[str, Func]) -> None:
    """Values computed when first needed, kept until no longer useful."""
    blur_x, blur_y = funcs["blur_x"], funcs["blur_y"]
    y = "y"
    blur_x.store_root().compute_at(blur_y, y)


def _schedule_tiled(funcs: Dict[str, Func], tile: int = 32, vectorize: bool = True) -> None:
    """Overlapping tiles processed in parallel (redundant work on tile edges)."""
    blur_x, blur_y = funcs["blur_x"], funcs["blur_y"]
    x, y = Var("x"), Var("y")
    xo, yo, xi, yi = Var("xo"), Var("yo"), Var("xi"), Var("yi")
    blur_y.tile(x, y, xo, yo, xi, yi, tile, tile).parallel(yo)
    blur_x.compute_at(blur_y, xo)
    if vectorize:
        blur_y.vectorize(xi, 4)
        blur_x.vectorize(x, 4)


def _schedule_tiled_novec(funcs: Dict[str, Func]) -> None:
    _schedule_tiled(funcs, vectorize=False)


def _schedule_sliding_in_tiles(funcs: Dict[str, Func], strip: int = 8) -> None:
    """Strips of scanlines in parallel, sliding window within each strip."""
    blur_x, blur_y = funcs["blur_x"], funcs["blur_y"]
    y, yo, yi = Var("y"), Var("yo"), Var("yi")
    blur_y.split(y, yo, yi, strip).parallel(yo)
    blur_x.store_at(blur_y, yo).compute_at(blur_y, yi)


def _schedule_tuned(funcs: Dict[str, Func]) -> None:
    """A schedule equivalent to the expert-tuned one the paper's tuner beat."""
    blur_x, blur_y = funcs["blur_x"], funcs["blur_y"]
    x, y, xi, yi = Var("x"), Var("y"), Var("xi"), Var("yi")
    xo, yo = Var("xo"), Var("yo")
    blur_y.tile(x, y, xo, yo, xi, yi, 64, 32).parallel(yo).vectorize(xi, 4)
    blur_x.store_at(blur_y, yo).compute_at(blur_y, yi).vectorize(x, 4)


def _schedule_gpu(funcs: Dict[str, Func]) -> None:
    """Map tiles to GPU blocks and intra-tile pixels to GPU threads."""
    blur_x, blur_y = funcs["blur_x"], funcs["blur_y"]
    x, y, xi, yi = Var("x"), Var("y"), Var("xi"), Var("yi")
    blur_y.gpu_tile(x, y, xi, yi, 16, 16)
    blur_x.compute_at(blur_y, Var("x_blk"))


BLUR_SCHEDULES = {
    "breadth_first": _schedule_breadth_first,
    "full_fusion": _schedule_full_fusion,
    "sliding_window": _schedule_sliding_window,
    "tiled": _schedule_tiled,
    "tiled_novec": _schedule_tiled_novec,
    "sliding_in_tiles": _schedule_sliding_in_tiles,
    "tuned": _schedule_tuned,
    "gpu": _schedule_gpu,
}


def make_blur(image: np.ndarray, name: str = "blur") -> AppPipeline:
    """Build the two-stage blur over a concrete input image.

    ``image`` is a float32 array of shape (width, height).
    """
    image = np.ascontiguousarray(image, dtype=np.float32)
    input_buffer = Buffer(image, name="input")
    clamped = repeat_edge(input_buffer, name="input_clamped")

    x, y = Var("x"), Var("y")
    blur_x = Func("blur_x")
    blur_y = Func("blur_y")
    blur_x[x, y] = (clamped[x - 1, y] + clamped[x, y] + clamped[x + 1, y]) / 3.0
    blur_y[x, y] = (blur_x[x, y - 1] + blur_x[x, y] + blur_x[x, y + 1]) / 3.0

    return AppPipeline(
        name=name,
        output=blur_y,
        funcs={"input_clamped": clamped, "blur_x": blur_x, "blur_y": blur_y},
        algorithm_lines=2,
        schedules=dict(BLUR_SCHEDULES),
        default_size=[image.shape[0], image.shape[1]],
    )
