"""The paper's example applications, written in the DSL.

Each module exposes a ``make_*`` constructor returning an :class:`AppPipeline`
(the output Func, the dictionary of stages so schedules can reach them, and
metadata such as the algorithm's line count), plus named schedule functions
(naive breadth-first, hand-tuned, GPU-style) used by the benchmarks.
"""

from repro.apps.common import AppPipeline, downsample_2d, upsample_2d
from repro.apps.blur import make_blur, BLUR_SCHEDULES
from repro.apps.histogram_equalize import make_histogram_equalize
from repro.apps.unsharp import make_unsharp
from repro.apps.bilateral_grid import make_bilateral_grid
from repro.apps.camera_pipe import make_camera_pipe
from repro.apps.interpolate import make_interpolate
from repro.apps.local_laplacian import make_local_laplacian

__all__ = [
    "AppPipeline",
    "downsample_2d",
    "upsample_2d",
    "make_blur",
    "BLUR_SCHEDULES",
    "make_histogram_equalize",
    "make_unsharp",
    "make_bilateral_grid",
    "make_camera_pipe",
    "make_interpolate",
    "make_local_laplacian",
]
