"""The paper's example applications, written in the DSL.

Each module exposes a ``make_*`` constructor returning an :class:`AppPipeline`
(the output Func, the dictionary of stages so schedules can reach them, and
metadata such as the algorithm's line count), plus named schedules — first
class, serializable :class:`~repro.core.Schedule` data (naive breadth-first,
hand-tuned, GPU-style) swept by the benchmarks and appliable either
destructively (``app.apply_schedule(name)``) or non-destructively
(``app.compile(schedule=name)``).
"""

from repro.apps.common import AppPipeline, downsample_2d, resample_axis, upsample_2d
from repro.apps.blur import make_blur, BLUR_SCHEDULES
from repro.apps.histogram_equalize import make_histogram_equalize, HISTOGRAM_SCHEDULES
from repro.apps.unsharp import make_unsharp, UNSHARP_SCHEDULES
from repro.apps.bilateral_grid import make_bilateral_grid, BILATERAL_GRID_SCHEDULES
from repro.apps.camera_pipe import make_camera_pipe
from repro.apps.interpolate import make_interpolate
from repro.apps.local_laplacian import make_local_laplacian
from repro.apps.video import make_video, video_schedules
from repro.apps.rasterize import make_rasterize, default_primitives, RASTERIZE_SCHEDULES
from repro.apps.pyramid import make_pyramid, pyramid_level_sizes, pyramid_schedules

__all__ = [
    "AppPipeline",
    "downsample_2d",
    "resample_axis",
    "upsample_2d",
    "make_blur",
    "BLUR_SCHEDULES",
    "make_histogram_equalize",
    "HISTOGRAM_SCHEDULES",
    "make_unsharp",
    "UNSHARP_SCHEDULES",
    "make_bilateral_grid",
    "BILATERAL_GRID_SCHEDULES",
    "make_camera_pipe",
    "make_interpolate",
    "make_local_laplacian",
    "make_video",
    "video_schedules",
    "make_rasterize",
    "default_primitives",
    "RASTERIZE_SCHEDULES",
    "make_pyramid",
    "pyramid_level_sizes",
    "pyramid_schedules",
]
