"""Multi-scale interpolation — one of the paper's five applications.

Alpha-weighted pixel data is pushed down an image pyramid and pulled back up,
interpolating missing data for seamless compositing.  The pyramids are chains
of stages that locally resample over small stencils, but dependence propagates
globally across the entire image (Figure 6 counts 49 functions with 47
stencils for the 10-level version; the level count here is configurable).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule, as_schedule
from repro.lang import Buffer, Func, Var, repeat_edge, select

__all__ = ["make_interpolate"]


def _breadth_first_schedule(funcs: Dict[str, Func]) -> Schedule:
    s = Schedule()
    for name, func in funcs.items():
        if name.startswith(("down_", "interp_")) or name == "normalized":
            s = s.func(func.name).compute_root()
    return as_schedule(s)


def _tuned_schedule(funcs: Dict[str, Func]) -> Schedule:
    s = Schedule()
    for name, func in funcs.items():
        if name.startswith(("down_", "interp_")):
            s = s.func(func.name).compute_root().parallel(func.args[1]).vectorize("x", 4)
    return as_schedule(
        s.func("normalized").split("y", "yo", "yi", 8).parallel("yo").vectorize("x", 4))


def _gpu_schedule(funcs: Dict[str, Func]) -> Schedule:
    s = Schedule()
    for name, func in funcs.items():
        if name.startswith(("down_", "interp_")):
            s = s.func(func.name).compute_root().gpu_tile("x", "y", "xi", "yi", 8, 8)
    return as_schedule(s.func("normalized").gpu_tile("x", "y", "xi", "yi", 16, 16))


def make_interpolate(image: np.ndarray, levels: int = 4,
                     name: str = "interpolate") -> AppPipeline:
    """Build multi-scale interpolation over an RGBA float32 image.

    ``image`` has shape (width, height, 4); the alpha channel (index 3) masks
    which pixels carry valid data.
    """
    image = np.ascontiguousarray(image, dtype=np.float32)
    width, height, channels = image.shape
    if channels != 4:
        raise ValueError("interpolate expects an RGBA image (4 channels)")
    input_buffer = Buffer(image, name="interp_input")
    clamped = repeat_edge(input_buffer, name="interp_clamped")

    x, y, c = Var("x"), Var("y"), Var("c")

    # Level 0: premultiply by alpha.
    downsampled: List[Func] = []
    level0 = Func("down_0")
    level0[x, y, c] = clamped[x, y, c] * clamped[x, y, 3]
    downsampled.append(level0)

    # Downsample chain (2x2 box filter per level).
    for level in range(1, levels):
        prev = downsampled[level - 1]
        down = Func(f"down_{level}")
        down[x, y, c] = (
            prev[2 * x, 2 * y, c] + prev[2 * x + 1, 2 * y, c]
            + prev[2 * x, 2 * y + 1, c] + prev[2 * x + 1, 2 * y + 1, c]
        ) * 0.25
        downsampled.append(down)

    # Upsample chain: start from the coarsest level and blend with each finer level
    # wherever the finer level lacks alpha coverage.
    interpolated: List[Func] = [None] * levels
    upsampled: Dict[int, Func] = {}
    interpolated[levels - 1] = downsampled[levels - 1]
    for level in range(levels - 2, -1, -1):
        coarser = interpolated[level + 1]
        up = Func(f"interp_up_{level}")
        up[x, y, c] = 0.5 * (
            coarser[x / 2, y / 2, c] + coarser[(x + 1) / 2, (y + 1) / 2, c]
        )
        upsampled[level] = up
        blended = Func(f"interp_{level}")
        alpha = downsampled[level][x, y, 3]
        blended[x, y, c] = downsampled[level][x, y, c] + (1.0 - alpha) * up[x, y, c]
        interpolated[level] = blended

    normalized = Func("normalized")
    weight = interpolated[0][x, y, 3]
    normalized[x, y, c] = interpolated[0][x, y, c] / select(weight.eq(0.0), 1.0, weight)

    funcs: Dict[str, Func] = {"input_clamped": clamped, "normalized": normalized}
    for level, func in enumerate(downsampled):
        funcs[f"down_{level}"] = func
    for level in range(levels - 1):
        funcs[f"interp_{level}"] = interpolated[level]
        funcs[f"interp_up_{level}"] = upsampled[level]

    return AppPipeline(
        name=name,
        output=normalized,
        funcs=funcs,
        algorithm_lines=21,
        schedules={
            "breadth_first": _breadth_first_schedule(funcs),
            "tuned": _tuned_schedule(funcs),
            "gpu": _gpu_schedule(funcs),
        },
        default_size=[width, height, 3],
    )
