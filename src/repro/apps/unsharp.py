"""Unsharp masking: a small but realistic sharpening pipeline.

Not one of the paper's five headline applications, but a standard member of
the Halide application suite; it exercises separable Gaussian blurs feeding a
point-wise combine, which is the most common fusion pattern in practice.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, Var, repeat_edge

__all__ = ["make_unsharp", "UNSHARP_SCHEDULES"]

#: Named schedules as first-class Schedule data.  Stage names here are the
#: *function* names (ublur_x/ublur_y), which is how the compiler addresses them.
UNSHARP_SCHEDULES: Dict[str, Schedule] = {
    "breadth_first": (Schedule()
                      .func("ublur_x").compute_root()
                      .func("ublur_y").compute_root()
                      .schedule),
    "tuned": (Schedule()
              .func("sharpened").tile("x", "y", "xo", "yo", "xi", "yi", 32, 16)
              .parallel("yo").vectorize("xi", 4)
              .func("ublur_y").compute_at("sharpened", "xo").vectorize("x", 4)
              .func("ublur_x").compute_at("sharpened", "xo").vectorize("x", 4)
              .schedule),
}


def make_unsharp(image: np.ndarray, strength: float = 1.5,
                 name: str = "unsharp") -> AppPipeline:
    """Build an unsharp-mask pipeline over a float32 image of shape (width, height)."""
    image = np.ascontiguousarray(image, dtype=np.float32)
    input_buffer = Buffer(image, name="unsharp_input")
    clamped = repeat_edge(input_buffer, name="unsharp_clamped")

    x, y = Var("x"), Var("y")
    kernel = (0.0625, 0.25, 0.375, 0.25, 0.0625)  # 5-tap binomial

    blur_x = Func("ublur_x")
    blur_x[x, y] = sum(
        kernel[i + 2] * clamped[x + i, y] for i in range(-2, 3)
    )
    blur_y = Func("ublur_y")
    blur_y[x, y] = sum(
        kernel[i + 2] * blur_x[x, y + i] for i in range(-2, 3)
    )

    sharpened = Func("sharpened")
    sharpened[x, y] = clamped[x, y] + strength * (clamped[x, y] - blur_y[x, y])

    funcs = {
        "input_clamped": clamped,
        "blur_x": blur_x,
        "blur_y": blur_y,
        "sharpened": sharpened,
    }
    return AppPipeline(
        name=name,
        output=sharpened,
        funcs=funcs,
        algorithm_lines=4,
        schedules=dict(UNSHARP_SCHEDULES),
        default_size=[image.shape[0], image.shape[1]],
    )
