"""An Array-OL-style resampling pyramid with non-integer rate changes.

The image is decimated ``levels`` times by the rational rate 3/2 per axis
(separable passes: x then y), then interpolated back up by 2/3 per axis —
the multi-rate chain shape of Array-OL / stream-processing pipelines, where
consumer and producer run at incommensurate rates.  Every stage is a clamped
two-tap gather (:func:`repro.apps.common.resample_axis`): the read coordinate
is *computed* from the iteration variable (``(c * num) / den``), clamped to
build-time constants, and blended with the exact fractional part, so bounds
inference must reason through the computed, clamped footprint.

Stage names are deterministic (``down{l}_x``, ``down{l}_y``, ``up{l}_x``,
``up{l}_y``), so the named schedules — including a per-level ``compute_at``
that keeps each level's x-pass inside its y-pass's scanline loop — can
address every level.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.apps.common import AppPipeline, resample_axis
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func

__all__ = ["make_pyramid", "pyramid_level_sizes", "pyramid_schedules"]


def pyramid_level_sizes(width: int, height: int,
                        levels: int) -> List[Tuple[int, int]]:
    """Sizes of every pyramid level, full resolution first (ceil of 2/3)."""
    sizes = [(int(width), int(height))]
    for _ in range(levels):
        w, h = sizes[-1]
        sizes.append(((w * 2 + 2) // 3, (h * 2 + 2) // 3))
    return sizes


def pyramid_schedules(levels: int) -> Dict[str, Schedule]:
    """The named schedule family for a ``levels``-deep pyramid."""
    stage_names = []
    for level in range(1, levels + 1):
        stage_names += [f"down{level}_x", f"down{level}_y"]
    for level in range(levels, 0, -1):
        stage_names += [f"up{level}_x", f"up{level}_y"]

    breadth = Schedule()
    for name in stage_names[:-1]:
        breadth = breadth.func(name).compute_root()

    # Per-level locality: every y-pass is materialized, and its x-pass is
    # computed inside that y-pass's scanline loop (compute_at the gather
    # consumer — the producer footprint per scanline is the clamped gather
    # window, which bounds inference derives from the computed coordinates).
    per_level = Schedule()
    for name in stage_names[:-1]:
        if name.endswith("_y"):
            per_level = per_level.func(name).compute_root()
        else:
            per_level = per_level.func(name).compute_at(name[:-2] + "_y", "y")

    parallel_rows = Schedule()
    for name in stage_names[:-1]:
        if name.endswith("_y"):
            parallel_rows = parallel_rows.func(name).compute_root().parallel("y")
        else:
            parallel_rows = parallel_rows.func(name).compute_at(name[:-2] + "_y", "y")
    parallel_rows = parallel_rows.func(stage_names[-1]).parallel("y")

    return {
        "breadth_first": breadth.schedule,
        # Every gather stage folded into its consumer (the default call
        # schedule): one deep computed-coordinate expression per pixel.
        "inline": Schedule(),
        "per_level": per_level.schedule,
        "parallel_rows": parallel_rows.schedule,
    }


def make_pyramid(image: np.ndarray, levels: int = 2,
                 name: str = "pyramid") -> AppPipeline:
    """Build the down/up resampling chain over a concrete float32 image.

    ``image`` has shape (width, height).  The output has the input's size;
    ``levels`` rational decimations (3/2 per axis) are followed by the
    matching interpolations (2/3 per axis) back up.
    """
    image = np.ascontiguousarray(image, dtype=np.float32)
    width, height = image.shape
    sizes = pyramid_level_sizes(width, height, levels)

    input_buffer = Buffer(image, name="input")
    funcs: Dict[str, Func] = {}
    current = input_buffer
    # Decimate: level l-1 -> level l, x pass then y pass.
    for level in range(1, levels + 1):
        src_w, src_h = sizes[level - 1]
        down_x = resample_axis(current, f"down{level}_x", 3, 2, src_w, axis=0)
        down_y = resample_axis(down_x, f"down{level}_y", 3, 2, src_h, axis=1)
        funcs[down_x.name] = down_x
        funcs[down_y.name] = down_y
        current = down_y
    # Interpolate back: level l -> level l-1.
    for level in range(levels, 0, -1):
        src_w, src_h = sizes[level]
        up_x = resample_axis(current, f"up{level}_x", 2, 3, src_w, axis=0)
        up_y = resample_axis(up_x, f"up{level}_y", 2, 3, src_h, axis=1)
        funcs[up_x.name] = up_x
        funcs[up_y.name] = up_y
        current = up_y

    return AppPipeline(
        name=name,
        output=current,
        funcs=funcs,
        algorithm_lines=4,
        schedules=pyramid_schedules(levels),
        default_size=[width, height],
    )
