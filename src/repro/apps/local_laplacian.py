"""Local Laplacian filters — the paper's flagship application (Figure 1).

The algorithm tone-maps an image and enhances local contrast in an
edge-respecting way by building K differently-remapped Gaussian pyramids,
forming their Laplacian pyramids, selecting between adjacent intensity levels
with a data-dependent interpolation driven by the input's own Gaussian
pyramid, and collapsing the result.  With 8 pyramid levels and 8 intensity
levels the graph has 99 stages; both counts are configurable here so tests and
benchmarks can scale the pipeline down.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule, as_schedule
from repro.lang import Buffer, Func, Var, cast, clamp, repeat_edge
from repro.types import Float, Int

__all__ = ["make_local_laplacian"]


def _breadth_first_schedule(funcs: Dict[str, Func]) -> Schedule:
    s = Schedule()
    for name, func in funcs.items():
        if name.endswith("_clamped") or name == "remap_lut":
            continue
        s = s.func(func.name).compute_root()
    return as_schedule(s)


def _tuned_schedule(funcs: Dict[str, Func]) -> Schedule:
    """Parallelize every pyramid stage over y and vectorize over x; fuse the
    fine levels of the output pyramid into the output loop nest."""
    s = (Schedule()
         .func("local_laplacian").split("y", "yo", "yi", 8).parallel("yo")
         .vectorize("x", 4))
    for name, func in funcs.items():
        if name in ("local_laplacian", "remap_lut") or name.endswith("_clamped"):
            continue
        if func.dimensions() >= 2:
            s = s.func(func.name).compute_root().parallel(func.args[1])
    return as_schedule(s.func("remap_lut").compute_root())


def _gpu_schedule(funcs: Dict[str, Func]) -> Schedule:
    s = Schedule()
    for name, func in funcs.items():
        if name.endswith("_clamped") or name == "remap_lut":
            continue
        if func.dimensions() >= 2:
            s = s.func(func.name).compute_root().gpu_tile("x", "y", "xi", "yi", 8, 8)
    return as_schedule(s.func("remap_lut").compute_root())


def _downsample(source: Func, name: str) -> Func:
    """2x downsample with the [1 3 3 1] kernel (the DOWN box of Figure 1)."""
    x, y = Var("x"), Var("y")
    extra = [Var(f"k{i}") for i in range(source.dimensions() - 2)]
    downx = Func(f"{name}_dx")
    downy = Func(f"{name}")
    downx[(x, y, *extra)] = (
        source[(2 * x - 1, y, *extra)] + 3.0 * source[(2 * x, y, *extra)]
        + 3.0 * source[(2 * x + 1, y, *extra)] + source[(2 * x + 2, y, *extra)]
    ) / 8.0
    downy[(x, y, *extra)] = (
        downx[(x, 2 * y - 1, *extra)] + 3.0 * downx[(x, 2 * y, *extra)]
        + 3.0 * downx[(x, 2 * y + 1, *extra)] + downx[(x, 2 * y + 2, *extra)]
    ) / 8.0
    return downy


def _upsample(source: Func, name: str) -> Func:
    """2x upsample with linear interpolation (the UP box of Figure 1)."""
    x, y = Var("x"), Var("y")
    extra = [Var(f"k{i}") for i in range(source.dimensions() - 2)]
    upx = Func(f"{name}_ux")
    upy = Func(f"{name}")
    upx[(x, y, *extra)] = 0.25 * source[((x / 2) - 1 + 2 * (x % 2), y, *extra)] + \
        0.75 * source[(x / 2, y, *extra)]
    upy[(x, y, *extra)] = 0.25 * upx[(x, (y / 2) - 1 + 2 * (y % 2), *extra)] + \
        0.75 * upx[(x, y / 2, *extra)]
    return upy


def make_local_laplacian(image: np.ndarray, levels: int = 4, intensity_levels: int = 8,
                         alpha: float = 1.0, beta: float = 1.0,
                         name: str = "local_laplacian") -> AppPipeline:
    """Build the local Laplacian filter over a float32 grayscale image in [0, 1].

    ``levels`` is the number of pyramid levels (the paper uses 8),
    ``intensity_levels`` the number of remapped copies (the paper uses 8).
    """
    image = np.ascontiguousarray(image, dtype=np.float32)
    width, height = image.shape
    input_buffer = Buffer(image, name="ll_input")
    clamped = repeat_edge(input_buffer, name="ll_clamped")

    x, y, k = Var("x"), Var("y"), Var("k")
    funcs: Dict[str, Func] = {"input_clamped": clamped}

    gray = Func("gray")
    gray[x, y] = clamp(clamped[x, y], 0.0, 1.0)
    funcs["gray"] = gray

    # Remapping LUT: the tone curve applied to the difference from each
    # intensity level, sampled densely (the LUT box of Figure 1).
    lut_samples = 256 * 8
    remap_lut = Func("remap_lut")
    i = Var("i")
    fx = cast(Float(32), i - lut_samples // 2) / 256.0
    remap_lut[i] = alpha * fx * _exp_approx(-fx * fx / 2.0)
    funcs["remap_lut"] = remap_lut

    # The K remapped Gaussian pyramids, expressed with k as a third dimension.
    g_pyramid: List[Func] = []
    g0 = Func("gPyramid0")
    level_value = cast(Float(32), k) / float(max(intensity_levels - 1, 1))
    idx = clamp(
        cast(Int(32), gray[x, y] * float(256 * (intensity_levels - 1)) + 0.5)
        - 256 * k + lut_samples // 2,
        0, lut_samples - 1,
    )
    g0[x, y, k] = beta * (gray[x, y] - level_value) + level_value + remap_lut[idx]
    g_pyramid.append(g0)
    funcs["gPyramid0"] = g0
    for j in range(1, levels):
        down = _downsample(g_pyramid[j - 1], f"gPyramid{j}")
        g_pyramid.append(down)
        funcs[f"gPyramid{j}"] = down

    # The input's own Gaussian pyramid (drives the data-dependent selection).
    in_g_pyramid: List[Func] = [gray]
    for j in range(1, levels):
        down = _downsample(in_g_pyramid[j - 1], f"inGPyramid{j}")
        in_g_pyramid.append(down)
        funcs[f"inGPyramid{j}"] = down

    # Laplacian pyramid of the remapped copies.
    l_pyramid: List[Func] = [None] * levels
    l_pyramid[levels - 1] = g_pyramid[levels - 1]
    for j in range(levels - 2, -1, -1):
        up = _upsample(g_pyramid[j + 1], f"lPyramidUp{j}")
        lap = Func(f"lPyramid{j}")
        lap[x, y, k] = g_pyramid[j][x, y, k] - up[x, y, k]
        l_pyramid[j] = lap
        funcs[f"lPyramidUp{j}"] = up
        funcs[f"lPyramid{j}"] = lap

    # Output Laplacian pyramid: at each level pick between adjacent intensity
    # levels based on the input pyramid (the DDA boxes of Figure 1).
    out_l_pyramid: List[Func] = []
    for j in range(levels):
        level = in_g_pyramid[j][x, y] * float(intensity_levels - 1)
        li = clamp(cast(Int(32), level), 0, intensity_levels - 2)
        lf = level - cast(Float(32), li)
        out_lap = Func(f"outLPyramid{j}")
        out_lap[x, y] = (1.0 - lf) * l_pyramid[j][x, y, li] + lf * l_pyramid[j][x, y, li + 1]
        out_l_pyramid.append(out_lap)
        funcs[f"outLPyramid{j}"] = out_lap

    # Collapse the output pyramid.
    out_g_pyramid: List[Func] = [None] * levels
    out_g_pyramid[levels - 1] = out_l_pyramid[levels - 1]
    for j in range(levels - 2, -1, -1):
        up = _upsample(out_g_pyramid[j + 1], f"outGPyramidUp{j}")
        collapsed = Func(f"outGPyramid{j}")
        collapsed[x, y] = up[x, y] + out_l_pyramid[j][x, y]
        out_g_pyramid[j] = collapsed
        funcs[f"outGPyramidUp{j}"] = up
        funcs[f"outGPyramid{j}"] = collapsed

    output = Func("local_laplacian")
    output[x, y] = clamp(out_g_pyramid[0][x, y], 0.0, 1.0)
    funcs["local_laplacian"] = output

    return AppPipeline(
        name=name,
        output=output,
        funcs=funcs,
        algorithm_lines=52,
        schedules={
            "breadth_first": _breadth_first_schedule(funcs),
            "tuned": _tuned_schedule(funcs),
            "gpu": _gpu_schedule(funcs),
        },
        default_size=[width, height],
    )


def _exp_approx(e):
    """exp() through the DSL intrinsic (kept separate for readability)."""
    from repro.lang import exp

    return exp(e)
