"""Shared building blocks for the example applications.

``downsample_2d`` / ``upsample_2d`` implement the [1 3 3 1] resampling kernels
shown in Figure 1 of the paper (the DOWN/UP boxes of the local Laplacian
pipeline), and :class:`AppPipeline` is the uniform wrapper the benchmarks and
examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.core.pipeline_schedule import Schedule, ScheduleBuilder, as_schedule
from repro.lang import Func, Var, cast, clamp
from repro.pipeline import CompiledPipeline, Pipeline
from repro.types import Float

__all__ = ["AppPipeline", "downsample_2d", "upsample_2d", "resample_axis"]

#: A named app schedule: Schedule data (preferred) or a legacy mutation callable.
ScheduleLike = Union[Schedule, ScheduleBuilder, Callable[[Dict[str, Func]], None]]


@dataclass
class AppPipeline:
    """An application: its output stage, all named stages, and metadata."""

    name: str
    output: Func
    #: All stages by name, so schedules can address them.
    funcs: Dict[str, Func]
    #: Number of lines of algorithm code (the Figure 7 "lines Halide" column).
    algorithm_lines: int = 0
    #: Named schedules.  Values are first-class :class:`Schedule` data; legacy
    #: mutation callables ``(funcs) -> None`` are still accepted and applied
    #: through the same reset-first shim.
    schedules: Dict[str, ScheduleLike] = field(default_factory=dict)
    #: Default realization sizes used by tests and benchmarks.
    default_size: Optional[List[int]] = None
    #: Extra keyword arguments for Pipeline.realize (params / inputs).
    realize_kwargs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        #: One long-lived Pipeline per app, so its compilation cache is
        #: shared by every realize()/compile() call on this AppPipeline.
        self._pipeline = Pipeline(self.output)

    def pipeline(self) -> Pipeline:
        return self._pipeline

    # ------------------------------------------------------------------
    # schedules
    # ------------------------------------------------------------------
    def named_schedule(self, name: str) -> Schedule:
        """One of the named schedules, as first-class :class:`Schedule` data."""
        value = self._lookup_schedule(name)
        if isinstance(value, (Schedule, ScheduleBuilder)):
            return as_schedule(value)
        raise TypeError(
            f"schedule {name!r} of app {self.name!r} is a legacy mutation "
            "callable, not Schedule data; apply it with apply_schedule() or "
            "port it (see Schedule.from_funcs)"
        )

    def _lookup_schedule(self, name: str) -> ScheduleLike:
        try:
            return self.schedules[name]
        except KeyError:
            raise KeyError(
                f"app {self.name!r} has no schedule {name!r}; "
                f"available: {sorted(self.schedules)}"
            ) from None

    def reset_schedules(self) -> "AppPipeline":
        """Restore every stage's default schedule (undo apply_schedule)."""
        for func in self.funcs.values():
            if func.function.schedule is not None:
                func.function.schedule.reset()
        return self

    def apply_schedule(self, name: str) -> "AppPipeline":
        """Destructively install one of the named schedules on the stages.

        Each Func's schedule is reset first, so applying a second schedule
        (or the same one twice) replaces rather than stacks.  Prefer the
        non-destructive :meth:`compile`/:meth:`realize` ``schedule=`` path,
        which never touches the Funcs.
        """
        value = self._lookup_schedule(name)
        self.reset_schedules()
        if isinstance(value, (Schedule, ScheduleBuilder)):
            as_schedule(value).apply_to_funcs(self.funcs)
        else:
            value(self.funcs)
        return self

    def _coerce_schedule(self, schedule):
        """Accept a schedule name, Schedule data, or None."""
        if isinstance(schedule, str) and not schedule.lstrip().startswith("{"):
            # A plain string is a named schedule (JSON text passes through).
            return self.named_schedule(schedule)
        return schedule

    # ------------------------------------------------------------------
    # compilation / execution
    # ------------------------------------------------------------------
    def compile(self, schedule=None, sizes=None, target=None, **kwargs) -> CompiledPipeline:
        """Compile the app under a schedule name (or Schedule value) and target.

        Non-destructive: the app's Funcs are not mutated, so many schedules
        can be compiled (and their CompiledPipelines held) concurrently from
        this one algorithm graph.
        """
        sizes = sizes if sizes is not None else self.default_size
        return self.pipeline().compile(sizes, schedule=self._coerce_schedule(schedule),
                                       target=target, **kwargs)

    def realize(self, sizes=None, backend=None, schedule=None, target=None, **kwargs):
        """Run the app under its current (or an explicitly named) schedule.

        ``schedule`` optionally selects a named schedule or Schedule value
        non-destructively; ``target`` (or the legacy ``backend`` name string)
        selects the execution backend.  Further keyword arguments are
        forwarded to :meth:`repro.pipeline.Pipeline.realize`.
        """
        sizes = sizes if sizes is not None else self.default_size
        merged = dict(self.realize_kwargs)
        merged.update(kwargs)
        if backend is not None:
            merged["backend"] = backend
        if target is not None:
            merged["target"] = target
        if schedule is not None:
            merged["schedule"] = self._coerce_schedule(schedule)
        return self.pipeline().realize(sizes, **merged)


def downsample_2d(source: Func, name: str) -> Func:
    """Downsample by 2x in both dimensions with the [1 3 3 1] kernel of Figure 1.

    The result at (x, y) draws from source pixels around (2x, 2y).  Extra
    dimensions of ``source`` (e.g. the intensity-level dimension of the local
    Laplacian pyramids) are passed through unchanged.
    """
    x, y = Var("x"), Var("y")
    extra = [Var(f"e{i}") for i in range(max(0, source.dimensions() - 2))]
    downx = Func(f"{name}_downx")
    downy = Func(f"{name}_downy")
    downx[(x, y, *extra)] = (
        source[(2 * x - 1, y, *extra)]
        + 3.0 * source[(2 * x, y, *extra)]
        + 3.0 * source[(2 * x + 1, y, *extra)]
        + source[(2 * x + 2, y, *extra)]
    ) / 8.0
    downy[(x, y, *extra)] = (
        downx[(x, 2 * y - 1, *extra)]
        + 3.0 * downx[(x, 2 * y, *extra)]
        + 3.0 * downx[(x, 2 * y + 1, *extra)]
        + downx[(x, 2 * y + 2, *extra)]
    ) / 8.0
    return downy


def resample_axis(source, name: str, num: int, den: int, src_size: int,
                  axis: int = 0) -> Func:
    """Resample one axis of a 2-D stage by the (possibly non-integer) rate
    ``num / den`` with a clamped two-tap gather.

    The result at coordinate ``c`` reads ``source`` at the *computed*
    coordinate ``clamp((c * num) / den, 0, src_size - 1)`` and the next
    sample, linearly interpolated by the exact fractional part
    ``((c * num) % den) / den``.  ``source`` may be a :class:`~repro.lang.Func`
    or a :class:`~repro.lang.Buffer`; ``src_size`` is its extent along
    ``axis`` (clamp bounds must be build-time constants, which is what makes
    the gather's footprint inferable).
    """
    x, y = Var("x"), Var("y")
    f = Func(name)
    c = x if axis == 0 else y
    scaled = c * int(num)
    base = scaled / int(den)
    frac = cast(Float(32), scaled % int(den)) / float(den)
    hi = int(src_size) - 1

    def at(coord):
        return (coord, y) if axis == 0 else (x, coord)

    a = source[at(clamp(base, 0, hi))]
    b = source[at(clamp(base + 1, 0, hi))]
    f[x, y] = a * (1.0 - frac) + b * frac
    return f


def upsample_2d(source: Func, name: str) -> Func:
    """Upsample by 2x in both dimensions with linear interpolation ([1 3 3 1] / 4)."""
    x, y = Var("x"), Var("y")
    extra = [Var(f"e{i}") for i in range(max(0, source.dimensions() - 2))]
    upx = Func(f"{name}_upx")
    upy = Func(f"{name}_upy")
    upx[(x, y, *extra)] = 0.25 * source[((x // 2) - 1 + 2 * (x % 2), y, *extra)] + \
        0.75 * source[(x // 2, y, *extra)]
    upy[(x, y, *extra)] = 0.25 * upx[(x, (y // 2) - 1 + 2 * (y % 2), *extra)] + \
        0.75 * upx[(x, y // 2, *extra)]
    return upy
