"""Shared building blocks for the example applications.

``downsample_2d`` / ``upsample_2d`` implement the [1 3 3 1] resampling kernels
shown in Figure 1 of the paper (the DOWN/UP boxes of the local Laplacian
pipeline), and :class:`AppPipeline` is the uniform wrapper the benchmarks and
examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.lang import Func, Var
from repro.pipeline import Pipeline

__all__ = ["AppPipeline", "downsample_2d", "upsample_2d"]


@dataclass
class AppPipeline:
    """An application: its output stage, all named stages, and metadata."""

    name: str
    output: Func
    #: All stages by name, so schedules can address them.
    funcs: Dict[str, Func]
    #: Number of lines of algorithm code (the Figure 7 "lines Halide" column).
    algorithm_lines: int = 0
    #: Named schedule appliers: schedule name -> callable(funcs) -> None.
    schedules: Dict[str, Callable[[Dict[str, Func]], None]] = field(default_factory=dict)
    #: Default realization sizes used by tests and benchmarks.
    default_size: Optional[List[int]] = None
    #: Extra keyword arguments for Pipeline.realize (params / inputs).
    realize_kwargs: Dict[str, object] = field(default_factory=dict)

    def pipeline(self) -> Pipeline:
        return Pipeline(self.output)

    def apply_schedule(self, name: str) -> "AppPipeline":
        """Apply one of the named schedules to the stages (mutates the Funcs)."""
        self.schedules[name](self.funcs)
        return self

    def realize(self, sizes=None, backend=None, **kwargs):
        """Run the app under its current schedule.

        ``backend`` selects the execution backend (``"interp"`` or
        ``"numpy"``); further keyword arguments are forwarded to
        :meth:`repro.pipeline.Pipeline.realize`.
        """
        sizes = sizes if sizes is not None else self.default_size
        merged = dict(self.realize_kwargs)
        merged.update(kwargs)
        if backend is not None:
            merged["backend"] = backend
        return self.pipeline().realize(sizes, **merged)


def downsample_2d(source: Func, name: str) -> Func:
    """Downsample by 2x in both dimensions with the [1 3 3 1] kernel of Figure 1.

    The result at (x, y) draws from source pixels around (2x, 2y).  Extra
    dimensions of ``source`` (e.g. the intensity-level dimension of the local
    Laplacian pyramids) are passed through unchanged.
    """
    x, y = Var("x"), Var("y")
    extra = [Var(f"e{i}") for i in range(max(0, source.dimensions() - 2))]
    downx = Func(f"{name}_downx")
    downy = Func(f"{name}_downy")
    downx[(x, y, *extra)] = (
        source[(2 * x - 1, y, *extra)]
        + 3.0 * source[(2 * x, y, *extra)]
        + 3.0 * source[(2 * x + 1, y, *extra)]
        + source[(2 * x + 2, y, *extra)]
    ) / 8.0
    downy[(x, y, *extra)] = (
        downx[(x, 2 * y - 1, *extra)]
        + 3.0 * downx[(x, 2 * y, *extra)]
        + 3.0 * downx[(x, 2 * y + 1, *extra)]
        + downx[(x, 2 * y + 2, *extra)]
    ) / 8.0
    return downy


def upsample_2d(source: Func, name: str) -> Func:
    """Upsample by 2x in both dimensions with linear interpolation ([1 3 3 1] / 4)."""
    x, y = Var("x"), Var("y")
    extra = [Var(f"e{i}") for i in range(max(0, source.dimensions() - 2))]
    upx = Func(f"{name}_upx")
    upy = Func(f"{name}_upy")
    upx[(x, y, *extra)] = 0.25 * source[((x // 2) - 1 + 2 * (x % 2), y, *extra)] + \
        0.75 * source[(x // 2, y, *extra)]
    upy[(x, y, *extra)] = 0.25 * upx[(x, (y // 2) - 1 + 2 * (y % 2), *extra)] + \
        0.75 * upx[(x, y // 2, *extra)]
    return upy
