"""The bilateral grid (Chen, Paris, Durand 2007) — one of the paper's five apps.

The pipeline scatters image samples into a coarse 3-D grid (building a
windowed histogram in each grid column), blurs the grid along each of its
axes with 5-point stencils, and reconstructs the output by data-dependent
trilinear interpolation in the grid.  It combines a scattering reduction,
3-D stencils, and data-dependent gathers in one graph (Figure 6 counts 7
functions, 3 of them stencils).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, RDom, Var, cast, clamp, repeat_edge, select
from repro.types import Float, Int

__all__ = ["make_bilateral_grid", "BILATERAL_GRID_SCHEDULES"]


def _tuned_schedule() -> Schedule:
    """Parallel grid construction, fused blur chain, vectorized reconstruction."""
    s = Schedule().func("grid").compute_root().parallel("z")
    for name in ("blurz", "blurx", "blury"):
        s = s.func(name).compute_root().parallel("z").vectorize("x", 4)
    return (s.func("bilateral").split("y", "yo", "yi", 8).parallel("yo")
            .vectorize("x", 4).schedule)


def _gpu_schedule() -> Schedule:
    s = Schedule().func("grid").compute_root()
    for name in ("blurz", "blurx", "blury"):
        s = s.func(name).compute_root().gpu_tile("x", "y", "xi", "yi", 8, 8)
    return s.func("bilateral").gpu_tile("x", "y", "xi", "yi", 16, 16).schedule


#: Named schedules as first-class Schedule data.
BILATERAL_GRID_SCHEDULES: Dict[str, Schedule] = {
    "breadth_first": Schedule(
        {name: [("compute_root",)]
         for name in ("grid", "blurz", "blurx", "blury", "bilateral")}),
    "tuned": _tuned_schedule(),
    "gpu": _gpu_schedule(),
}


def make_bilateral_grid(image: np.ndarray, s_sigma: int = 8, r_sigma: float = 0.1,
                        name: str = "bilateral_grid") -> AppPipeline:
    """Build the bilateral grid over a float32 image in [0, 1] of shape (width, height).

    ``s_sigma`` is the spatial downsampling of the grid (pixels per cell),
    ``r_sigma`` the range (intensity) cell size.
    """
    image = np.ascontiguousarray(image, dtype=np.float32)
    width, height = image.shape
    input_buffer = Buffer(image, name="bg_input")
    clamped = repeat_edge(input_buffer, name="bg_clamped")

    x, y, z, c = Var("x"), Var("y"), Var("z"), Var("c")

    # Grid construction: scatter each fine pixel into its (coarse x, coarse y,
    # intensity bin) cell, accumulating (weighted value, weight) in channel c.
    r = RDom(0, s_sigma, 0, s_sigma, name="r_grid")
    # The clamp both enforces and *declares* the intensity range, which is what
    # lets interval analysis bound the grid's z dimension (Section 4.2).
    val = clamp(
        clamped[x * s_sigma + r.x - s_sigma // 2, y * s_sigma + r.y - s_sigma // 2],
        0.0, 1.0,
    )
    zi = cast(Int(32), val * (1.0 / r_sigma) + 0.5)

    grid = Func("grid")
    grid[x, y, z, c] = 0.0
    grid[x, y, zi, c] += select(c.eq(0), val, 1.0)

    # Blur the grid along each axis with a 5-point binomial stencil.
    def blur_axis(source: Func, axis: int, blur_name: str) -> Func:
        blurred = Func(blur_name)
        coords = [x, y, z]

        def at(offset: int):
            shifted = list(coords)
            shifted[axis] = coords[axis] + offset
            return source[shifted[0], shifted[1], shifted[2], c]

        blurred[x, y, z, c] = (
            at(-2) + 4.0 * at(-1) + 6.0 * at(0) + 4.0 * at(1) + at(2)
        ) / 16.0
        return blurred

    blurz = blur_axis(grid, 2, "blurz")
    blurx = blur_axis(blurz, 0, "blurx")
    blury = blur_axis(blurx, 1, "blury")

    # Reconstruction: trilinear interpolation at data-dependent grid coordinates.
    val_out = clamp(clamped[x, y], 0.0, 1.0)
    zv = val_out * (1.0 / r_sigma)
    zi_out = cast(Int(32), zv)
    zf = zv - cast(Float(32), zi_out)
    xf = cast(Float(32), x % s_sigma) / float(s_sigma)
    yf = cast(Float(32), y % s_sigma) / float(s_sigma)
    xi_coord = x / s_sigma
    yi_coord = y / s_sigma

    def lerp(a, b, w):
        return a + w * (b - a)

    def grid_at(gx, gy, gz, gc):
        return blury[gx, gy, gz, gc]

    interpolated = Func("interpolated")
    interpolated[x, y, c] = lerp(
        lerp(
            lerp(grid_at(xi_coord, yi_coord, zi_out, c),
                 grid_at(xi_coord + 1, yi_coord, zi_out, c), xf),
            lerp(grid_at(xi_coord, yi_coord + 1, zi_out, c),
                 grid_at(xi_coord + 1, yi_coord + 1, zi_out, c), xf),
            yf,
        ),
        lerp(
            lerp(grid_at(xi_coord, yi_coord, zi_out + 1, c),
                 grid_at(xi_coord + 1, yi_coord, zi_out + 1, c), xf),
            lerp(grid_at(xi_coord, yi_coord + 1, zi_out + 1, c),
                 grid_at(xi_coord + 1, yi_coord + 1, zi_out + 1, c), xf),
            yf,
        ),
        zf,
    )

    bilateral = Func("bilateral")
    weight = interpolated[x, y, 1]
    bilateral[x, y] = interpolated[x, y, 0] / select(weight.eq(0.0), 1.0, weight)

    funcs = {
        "input_clamped": clamped,
        "grid": grid,
        "blurz": blurz,
        "blurx": blurx,
        "blury": blury,
        "interpolated": interpolated,
        "bilateral": bilateral,
    }
    return AppPipeline(
        name=name,
        output=bilateral,
        funcs=funcs,
        algorithm_lines=34,
        schedules=dict(BILATERAL_GRID_SCHEDULES),
        default_size=[width, height],
    )
