"""A camera raw-processing pipeline (the Frankencamera-style pipeline of the paper).

The pipeline turns raw Bayer-mosaic sensor data into a color image:

  hot-pixel suppression -> deinterleave into the four Bayer planes ->
  demosaic (interpolate the two missing colors at every site, a web of small
  interleaved stencils) -> color-correction matrix -> gamma curve applied
  through a look-up table (a data-dependent gather).

The demosaicking alone contributes over a dozen interdependent stencil stages,
which is what makes the camera pipeline the paper's example of a "complex"
graph (Figure 6: 32 functions, 22 stencils).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule, as_schedule
from repro.lang import Buffer, Func, RDom, Var, cast, clamp, repeat_edge, select
from repro.types import Float, Int, UInt

__all__ = ["make_camera_pipe"]


def _breadth_first_schedule(funcs: Dict[str, Func]) -> Schedule:
    s = Schedule()
    for name, func in funcs.items():
        if name not in ("processed",) and not name.endswith("_clamped"):
            s = s.func(func.name).compute_root()
    return as_schedule(s)


def _tuned_schedule(funcs: Dict[str, Func]) -> Schedule:
    """Fuse the demosaic web into strips of output scanlines, as the paper's tuner does.

    Blocks of scanlines are distributed across threads; the whole chain from
    hot-pixel suppression through color correction is computed per strip (good
    producer-consumer locality), the LUT is computed once at the root.
    """
    s = (Schedule()
         .func("processed").split("y", "yo", "yi", 8).parallel("yo").vectorize("x", 4)
         .func("corrected").compute_at("processed", "yo").vectorize("x", 4))
    for name in ("demosaic_r", "demosaic_g", "demosaic_b"):
        s = s.func(funcs[name].name).compute_at("processed", "yo").vectorize("x", 4)
    for name in ("g_at_r", "g_at_b", "r_at_gr", "b_at_gr", "r_at_gb", "b_at_gb",
                 "r_at_b", "b_at_r"):
        s = s.func(funcs[name].name).compute_at("processed", "yo")
    s = (s.func("denoised").compute_at("processed", "yo").vectorize("x", 4)
         .func("curve").compute_root())
    return as_schedule(s)


def make_camera_pipe(raw: np.ndarray, color_temp: float = 3700.0, gamma: float = 2.2,
                     contrast: float = 50.0, name: str = "camera_pipe") -> AppPipeline:
    """Build the camera pipeline over a uint16 Bayer raw image of shape (width, height).

    The Bayer pattern is GR/BG: green at (even, even) and (odd, odd), red at
    (odd, even), blue at (even, odd).
    """
    raw = np.ascontiguousarray(raw, dtype=np.uint16)
    width, height = raw.shape
    input_buffer = Buffer(raw, name="raw_input")
    clamped = repeat_edge(input_buffer, name="raw_clamped")

    x, y, c, i = Var("x"), Var("y"), Var("c"), Var("i")

    # --- hot pixel suppression -------------------------------------------------
    from repro.lang import max_ as emax

    denoised = Func("denoised")
    as_int = cast(Int(32), clamped[x, y])
    neighbor_max = cast(
        Int(32),
        emax(emax(clamped[x - 2, y], clamped[x + 2, y]),
             emax(clamped[x, y - 2], clamped[x, y + 2])),
    )
    denoised[x, y] = clamp(as_int, 0, neighbor_max)

    # --- deinterleave the Bayer planes ------------------------------------------
    g_gr = Func("g_gr")   # green on the red rows
    r_r = Func("r_r")     # red
    b_b = Func("b_b")     # blue
    g_gb = Func("g_gb")   # green on the blue rows
    g_gr[x, y] = denoised[2 * x, 2 * y]
    r_r[x, y] = denoised[2 * x + 1, 2 * y]
    b_b[x, y] = denoised[2 * x, 2 * y + 1]
    g_gb[x, y] = denoised[2 * x + 1, 2 * y + 1]

    # --- demosaic: interpolate the missing colors --------------------------------
    # Green at red and blue sites (average of the four neighbours).
    g_at_r = Func("g_at_r")
    g_at_r[x, y] = (g_gr[x, y] + g_gr[x + 1, y] + g_gb[x, y] + g_gb[x, y - 1]) / 4
    g_at_b = Func("g_at_b")
    g_at_b[x, y] = (g_gb[x, y] + g_gb[x - 1, y] + g_gr[x, y] + g_gr[x, y + 1]) / 4

    # Red and blue at the green sites (average of the two nearest samples).
    r_at_gr = Func("r_at_gr")
    r_at_gr[x, y] = (r_r[x - 1, y] + r_r[x, y]) / 2
    b_at_gr = Func("b_at_gr")
    b_at_gr[x, y] = (b_b[x, y - 1] + b_b[x, y]) / 2
    r_at_gb = Func("r_at_gb")
    r_at_gb[x, y] = (r_r[x, y] + r_r[x, y + 1]) / 2
    b_at_gb = Func("b_at_gb")
    b_at_gb[x, y] = (b_b[x, y] + b_b[x + 1, y]) / 2

    # Red at blue sites and blue at red sites (average of the four diagonals).
    r_at_b = Func("r_at_b")
    r_at_b[x, y] = (r_r[x - 1, y] + r_r[x, y] + r_r[x - 1, y + 1] + r_r[x, y + 1]) / 4
    b_at_r = Func("b_at_r")
    b_at_r[x, y] = (b_b[x, y - 1] + b_b[x, y] + b_b[x + 1, y - 1] + b_b[x + 1, y]) / 4

    # Reassemble full-resolution R, G, B planes from the 2x2 Bayer quads.
    half_x, half_y = x / 2, y / 2
    is_red_col = (x % 2).eq(1)
    is_blue_row = (y % 2).eq(1)

    demosaic_g = Func("demosaic_g")
    demosaic_g[x, y] = select(
        is_red_col & ~is_blue_row, g_at_r[half_x, half_y],
        select(~is_red_col & is_blue_row, g_at_b[half_x, half_y],
               select(~is_red_col & ~is_blue_row, g_gr[half_x, half_y],
                      g_gb[half_x, half_y])),
    )
    demosaic_r = Func("demosaic_r")
    demosaic_r[x, y] = select(
        is_red_col & ~is_blue_row, r_r[half_x, half_y],
        select(~is_red_col & ~is_blue_row, r_at_gr[half_x, half_y],
               select(is_red_col & is_blue_row, r_at_gb[half_x, half_y],
                      r_at_b[half_x, half_y])),
    )
    demosaic_b = Func("demosaic_b")
    demosaic_b[x, y] = select(
        ~is_red_col & is_blue_row, b_b[half_x, half_y],
        select(~is_red_col & ~is_blue_row, b_at_gr[half_x, half_y],
               select(is_red_col & is_blue_row, b_at_gb[half_x, half_y],
                      b_at_r[half_x, half_y])),
    )

    # --- color correction matrix ---------------------------------------------------
    # A fixed matrix blended by color temperature (simplified from the original).
    alpha = (color_temp - 3200.0) / (7000.0 - 3200.0)

    def blend(a, b):
        return a * alpha + b * (1.0 - alpha)

    matrix = [
        [blend(1.6697, 2.2997), blend(-0.2693, -0.4478), blend(-0.4004, 0.1706), blend(-42.4346, -39.0923)],
        [blend(-0.3576, -0.3826), blend(1.0615, 1.5906), blend(1.5949, -0.2080), blend(-37.1158, -25.4311)],
        [blend(-0.2175, -0.0888), blend(-1.8751, -0.7344), blend(6.9640, 2.2832), blend(-26.6970, -20.0826)],
    ]

    corrected = Func("corrected")
    rgb = [cast(Float(32), demosaic_r[x, y]), cast(Float(32), demosaic_g[x, y]),
           cast(Float(32), demosaic_b[x, y])]
    corrected[x, y, c] = select(
        c.eq(0), matrix[0][0] * rgb[0] + matrix[0][1] * rgb[1] + matrix[0][2] * rgb[2] + matrix[0][3],
        select(c.eq(1),
               matrix[1][0] * rgb[0] + matrix[1][1] * rgb[1] + matrix[1][2] * rgb[2] + matrix[1][3],
               matrix[2][0] * rgb[0] + matrix[2][1] * rgb[1] + matrix[2][2] * rgb[2] + matrix[2][3]),
    )

    # --- gamma curve through a LUT (data-dependent gather) ---------------------------
    lut_size = 1024
    curve = Func("curve")
    value = cast(Float(32), i) / float(lut_size - 1)
    # Gamma curve with a simple contrast S-curve, expressed with the pow intrinsic.
    from repro.lang import pow_

    gamma_curve = pow_(value, 1.0 / gamma)
    s_curve = gamma_curve * (1.0 + contrast / 100.0) - (contrast / 200.0)
    curve[i] = clamp(s_curve * 255.0, 0.0, 255.0)

    processed = Func("processed")
    scaled = clamp(corrected[x, y, c] * (float(lut_size - 1) / 1023.0), 0.0, float(lut_size - 1))
    processed[x, y, c] = curve[cast(Int(32), scaled)]

    funcs = {
        "raw_clamped": clamped,
        "denoised": denoised,
        "g_gr": g_gr, "r_r": r_r, "b_b": b_b, "g_gb": g_gb,
        "g_at_r": g_at_r, "g_at_b": g_at_b,
        "r_at_gr": r_at_gr, "b_at_gr": b_at_gr,
        "r_at_gb": r_at_gb, "b_at_gb": b_at_gb,
        "r_at_b": r_at_b, "b_at_r": b_at_r,
        "demosaic_r": demosaic_r, "demosaic_g": demosaic_g, "demosaic_b": demosaic_b,
        "corrected": corrected, "curve": curve, "processed": processed,
    }
    return AppPipeline(
        name=name,
        output=processed,
        funcs=funcs,
        algorithm_lines=123,
        schedules={
            "breadth_first": _breadth_first_schedule(funcs),
            "tuned": _tuned_schedule(funcs),
        },
        default_size=[width - 4, height - 4, 3],
    )
