"""Histogram equalization — the reduction example of Section 2 of the paper.

A scattering reduction computes a histogram, a recursive scan integrates it
into a CDF, and a point-wise, data-dependent gather remaps the input through
the CDF.  The pipeline exercises all three "beyond stencils" features of the
language: scatter, scan, and data-dependent access.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.common import AppPipeline
from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, RDom, Var, cast
from repro.types import Float, Int

__all__ = ["make_histogram_equalize", "HISTOGRAM_SCHEDULES"]

#: Named schedules as first-class Schedule data.
HISTOGRAM_SCHEDULES: Dict[str, Schedule] = {
    "breadth_first": (Schedule()
                      .func("histogram").compute_root()
                      .func("cdf").compute_root()
                      .schedule),
    "tuned": (Schedule()
              .func("histogram").compute_root()
              .func("cdf").compute_root()
              .func("equalized").split("y", "yo", "yi", 8).parallel("yo")
              .vectorize("x", 4)
              .schedule),
}


def make_histogram_equalize(image: np.ndarray, bins: int = 256,
                            name: str = "histogram_equalize") -> AppPipeline:
    """Build histogram equalization over a uint8 image of shape (width, height)."""
    image = np.ascontiguousarray(image, dtype=np.uint8)
    width, height = image.shape
    input_buffer = Buffer(image, name="heq_input")

    x, y, i = Var("x"), Var("y"), Var("i")
    r = RDom(0, width, 0, height, name="r_img")
    ri = RDom(1, bins - 1, name="r_bins")

    histogram = Func("histogram")
    histogram[i] = 0
    histogram[cast(Int(32), input_buffer[r.x, r.y])] += 1

    cdf = Func("cdf")
    cdf[i] = histogram[0]
    cdf[ri.x] = cdf[ri.x - 1] + histogram[ri.x]

    equalized = Func("equalized")
    pixels = float(width * height)
    # Clamp the coordinates so that schedules which round the traversed domain
    # up (split/vectorized x or y) never read outside the input image.
    from repro.lang import clamp

    guarded = input_buffer[clamp(x, 0, width - 1), clamp(y, 0, height - 1)]
    normalized = cast(Float(32), cdf[cast(Int(32), guarded)]) * (255.0 / pixels)
    equalized[x, y] = cast(Float(32), normalized)

    funcs = {"histogram": histogram, "cdf": cdf, "equalized": equalized}
    return AppPipeline(
        name=name,
        output=equalized,
        funcs=funcs,
        algorithm_lines=6,
        schedules=dict(HISTOGRAM_SCHEDULES),
        default_size=[width, height],
    )
