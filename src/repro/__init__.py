"""repro: a Python reproduction of Halide (PLDI 2013).

The package provides:

* an embedded DSL for describing image processing pipelines as chains of pure
  functions plus bounded reductions (:mod:`repro.lang`);
* a schedule representation decoupled from the algorithm (:mod:`repro.core`);
* a compiler that lowers algorithm + schedule into a complete loop nest using
  interval-analysis bounds inference, sliding-window optimization, storage
  folding, flattening, unrolling and vectorization (:mod:`repro.compiler`);
* runtime backends over numpy — a reference interpreter, a vectorized
  whole-array backend, and a compile-to-Python-source backend with a
  multi-core parallel runtime — plus an abstract machine model for
  performance analysis (:mod:`repro.runtime`, :mod:`repro.codegen`,
  :mod:`repro.machine`);
* a stochastic (genetic) autotuner over the schedule space (:mod:`repro.autotuner`);
* the paper's example applications and expert-style numpy baselines
  (:mod:`repro.apps`, :mod:`repro.reference`).
"""

from repro.types import Bool, Float, Int, Type, UInt
from repro.lang import (
    Buffer,
    Func,
    ImageParam,
    Param,
    RDom,
    Var,
    cast,
    clamp,
    max_,
    min_,
    select,
    sum_,
)
from repro.core.pipeline_schedule import Schedule, as_schedule
from repro.pipeline import CompiledPipeline, Pipeline
from repro.runtime.target import Target, as_target
from repro.compiler import LoweringOptions

__version__ = "0.8.0"

__all__ = [
    "Bool",
    "Float",
    "Int",
    "Type",
    "UInt",
    "Buffer",
    "Func",
    "ImageParam",
    "Param",
    "RDom",
    "Var",
    "cast",
    "clamp",
    "max_",
    "min_",
    "select",
    "sum_",
    "Pipeline",
    "CompiledPipeline",
    "Schedule",
    "as_schedule",
    "Target",
    "as_target",
    "LoweringOptions",
    "__version__",
]
