"""A tree-walking interpreter for lowered pipelines.

The executor evaluates the fully lowered statement over numpy buffers.  It is
the reference backend: every schedule of a pipeline must produce bit-identical
output through it (the property the paper's compiler guarantees by
construction), and it drives the instrumentation listeners that feed the
machine model.

Buffers are stored flat.  The flat index convention matches the flattening
pass: dimension 0 is innermost (stride 1), so multi-dimensional numpy views
use Fortran ordering (``reshape(shape, order="F")``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.compiler.lower import LoweredPipeline
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.runtime.counters import ExecutionListener

__all__ = ["Executor", "ExecutionError", "build_eval_table"]


class ExecutionError(RuntimeError):
    """Raised when the interpreter encounters an unbound name or bad access."""


_INTRINSICS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "abs": np.abs,
    "pow": np.power,
    "likely": lambda x: x,
}


class Executor:
    """Interprets a :class:`~repro.compiler.lower.LoweredPipeline`."""

    #: Whether this backend reports execution events to listeners.  The
    #: compiled backend opts out (generated code has no instrumentation).
    drives_listeners = True

    def __init__(self, lowered: LoweredPipeline,
                 listeners: Iterable[ExecutionListener] = (),
                 target=None):
        self.lowered = lowered
        self.listeners: List[ExecutionListener] = list(listeners)
        #: The resolved Target this executor was created for (may be None).
        #: The interpreter ignores vector_width/threads; subclasses may not.
        self.target = target
        self.scope: Dict[str, object] = {}
        self.buffers: Dict[str, np.ndarray] = {}
        self.buffer_types: Dict[str, np.dtype] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def bind(self, name: str, value) -> None:
        """Bind a free variable (output bounds, scalar parameters, ...)."""
        self.scope[name] = value

    def bind_input(self, name: str, array: np.ndarray) -> None:
        """Provide an input image as a flat, Fortran-ordered buffer."""
        self.buffers[name] = np.asarray(array).flatten(order="F")
        self.buffer_types[name] = np.asarray(array).dtype
        for i, extent in enumerate(np.asarray(array).shape):
            self.scope.setdefault(f"{name}.min.{i}", 0)
            self.scope.setdefault(f"{name}.extent.{i}", int(extent))
        stride = 1
        for i, extent in enumerate(np.asarray(array).shape):
            self.scope.setdefault(f"{name}.stride.{i}", stride)
            stride *= int(extent)

    def provide_buffer(self, name: str, flat_array: np.ndarray) -> None:
        """Provide pre-allocated storage for a realized function (e.g. the output)."""
        self.buffers[name] = flat_array
        self.buffer_types[name] = flat_array.dtype

    def run(self) -> None:
        """Execute the lowered statement."""
        import sys

        sys.setrecursionlimit(max(sys.getrecursionlimit(), 100000))
        self._execute(self.lowered.stmt)

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def _execute(self, stmt: S.Stmt) -> None:
        if stmt is None:
            return
        method = getattr(self, "_exec_" + type(stmt).__name__, None)
        if method is None:
            raise ExecutionError(f"cannot execute statement {type(stmt).__name__}")
        method(stmt)

    def _exec_Block(self, stmt: S.Block) -> None:
        for s in stmt.stmts:
            self._execute(s)

    def _exec_LetStmt(self, stmt: S.LetStmt) -> None:
        value = self._eval(stmt.value)
        saved = self.scope.get(stmt.name, _MISSING)
        self.scope[stmt.name] = value
        try:
            self._execute(stmt.body)
        finally:
            if saved is _MISSING:
                self.scope.pop(stmt.name, None)
            else:
                self.scope[stmt.name] = saved

    def _exec_ProducerConsumer(self, stmt: S.ProducerConsumer) -> None:
        if stmt.is_producer:
            for listener in self.listeners:
                listener.on_produce(stmt.name)
        self._execute(stmt.body)

    def _exec_For(self, stmt: S.For) -> None:
        mn = int(self._eval(stmt.min))
        extent = int(self._eval(stmt.extent))
        for listener in self.listeners:
            listener.on_loop_begin(stmt.name, stmt.for_type, extent)
        saved = self.scope.get(stmt.name, _MISSING)
        try:
            for i in range(mn, mn + extent):
                self.scope[stmt.name] = i
                self._execute(stmt.body)
        finally:
            if saved is _MISSING:
                self.scope.pop(stmt.name, None)
            else:
                self.scope[stmt.name] = saved
        for listener in self.listeners:
            listener.on_loop_end(stmt.name, stmt.for_type, extent)

    def _exec_Allocate(self, stmt: S.Allocate) -> None:
        size = int(self._eval(stmt.size))
        dtype = stmt.type.to_numpy_dtype()
        preexisting = stmt.name in self.buffers
        if not preexisting:
            self.buffers[stmt.name] = np.zeros(max(size, 0), dtype=dtype)
            self.buffer_types[stmt.name] = dtype
            for listener in self.listeners:
                listener.on_allocate(stmt.name, size, dtype.itemsize)
        try:
            self._execute(stmt.body)
        finally:
            if not preexisting:
                for listener in self.listeners:
                    listener.on_free(stmt.name)
                # Internal buffers go out of scope; externally provided ones persist.
                del self.buffers[stmt.name]

    def _exec_Store(self, stmt: S.Store) -> None:
        buffer = self.buffers.get(stmt.name)
        if buffer is None:
            raise ExecutionError(f"store to unknown buffer {stmt.name!r}")
        index = self._eval(stmt.index)
        value = self._eval(stmt.value)
        lanes = stmt.value.type.lanes if stmt.value.type.lanes > 1 else 1
        if isinstance(index, np.ndarray):
            lanes = index.size
            idx_array = index.astype(np.intp)
            if idx_array.size and (idx_array.min() < 0 or idx_array.max() >= buffer.size):
                raise ExecutionError(
                    f"store to {stmt.name!r} out of bounds "
                    f"(index {int(idx_array.max())}, size {buffer.size})"
                )
            buffer[idx_array] = value
        else:
            idx = int(index)
            if idx < 0 or idx >= buffer.size:
                raise ExecutionError(
                    f"store to {stmt.name!r} out of bounds (index {idx}, size {buffer.size})"
                )
            if isinstance(value, np.ndarray) and value.ndim > 0:
                buffer[idx:idx + value.size] = value
                lanes = value.size
            else:
                buffer[idx] = value
                lanes = 1
        for listener in self.listeners:
            listener.on_store(stmt.name, index, lanes, buffer.dtype.itemsize)

    def _exec_IfThenElse(self, stmt: S.IfThenElse) -> None:
        condition = self._eval(stmt.condition)
        if bool(condition):
            self._execute(stmt.then_case)
        elif stmt.else_case is not None:
            self._execute(stmt.else_case)

    def _exec_AssertStmt(self, stmt: S.AssertStmt) -> None:
        if not bool(self._eval(stmt.condition)):
            raise ExecutionError(stmt.message)

    def _exec_Evaluate(self, stmt: S.Evaluate) -> None:
        self._eval(stmt.value)

    def _exec_Realize(self, stmt: S.Realize) -> None:
        # Realize nodes only survive when flattening is skipped (not the normal
        # path); treat them as allocations of the boxed region.
        raise ExecutionError(
            "the executor requires flattened storage; run the flattening pass"
        )

    def _exec_Provide(self, stmt: S.Provide) -> None:
        raise ExecutionError(
            "the executor requires flattened stores; run the flattening pass"
        )

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, e: E.Expr):
        kind = type(e).__name__
        method = self._EVAL_TABLE.get(kind)
        if method is None:
            raise ExecutionError(f"cannot evaluate expression {kind}")
        return method(self, e)

    def _eval_IntImm(self, e: E.IntImm):
        return e.value

    def _eval_FloatImm(self, e: E.FloatImm):
        return e.value

    def _eval_Variable(self, e: E.Variable):
        try:
            return self.scope[e.name]
        except KeyError:
            raise ExecutionError(f"unbound variable {e.name!r}") from None

    def _eval_Cast(self, e: E.Cast):
        value = self._eval(e.value)
        dtype = e.type.to_numpy_dtype()
        if isinstance(value, np.ndarray):
            return value.astype(dtype)
        return dtype.type(value)

    def _arith(self, lanes: int) -> None:
        for listener in self.listeners:
            listener.on_arith(1, lanes)

    def _lanes_of(self, value) -> int:
        return value.size if isinstance(value, np.ndarray) and value.ndim > 0 else 1

    def _eval_Add(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a + b

    def _eval_Sub(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a - b

    def _eval_Mul(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a * b

    def _eval_Div(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        if e.type.is_float():
            return a / b
        return np.floor_divide(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) \
            else _int_floor_div(a, b)

    def _eval_Mod(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        if e.type.is_float():
            return np.fmod(a, b)
        return np.mod(a, b)

    def _eval_Min(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return np.minimum(a, b)

    def _eval_Max(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return np.maximum(a, b)

    def _eval_EQ(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a == b

    def _eval_NE(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a != b

    def _eval_LT(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a < b

    def _eval_LE(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a <= b

    def _eval_GT(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a > b

    def _eval_GE(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        self._arith(max(self._lanes_of(a), self._lanes_of(b)))
        return a >= b

    def _eval_And(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        return np.logical_and(a, b)

    def _eval_Or(self, e):
        a, b = self._eval(e.a), self._eval(e.b)
        return np.logical_or(a, b)

    def _eval_Not(self, e):
        return np.logical_not(self._eval(e.a))

    def _eval_Select(self, e):
        condition = self._eval(e.condition)
        true_value = self._eval(e.true_value)
        false_value = self._eval(e.false_value)
        if isinstance(condition, np.ndarray):
            return np.where(condition, true_value, false_value)
        return true_value if bool(condition) else false_value

    def _eval_Let(self, e: E.Let):
        value = self._eval(e.value)
        saved = self.scope.get(e.name, _MISSING)
        self.scope[e.name] = value
        try:
            return self._eval(e.body)
        finally:
            if saved is _MISSING:
                self.scope.pop(e.name, None)
            else:
                self.scope[e.name] = saved

    def _eval_Ramp(self, e: E.Ramp):
        base = self._eval(e.base)
        stride = self._eval(e.stride)
        return base + stride * np.arange(e.lanes)

    def _eval_Broadcast(self, e: E.Broadcast):
        value = self._eval(e.value)
        if isinstance(value, np.ndarray) and value.ndim > 0:
            return value
        return np.full(e.lanes, value)

    def _eval_Load(self, e: E.Load):
        buffer = self.buffers.get(e.name)
        if buffer is None:
            raise ExecutionError(f"load from unknown buffer {e.name!r}")
        index = self._eval(e.index)
        if isinstance(index, np.ndarray):
            idx = index.astype(np.intp)
            if idx.size and (idx.min() < 0 or idx.max() >= buffer.size):
                raise ExecutionError(
                    f"load from {e.name!r} out of bounds "
                    f"(index {int(idx.max())}, size {buffer.size})"
                )
            value = buffer[idx]
            lanes = idx.size
        else:
            scalar_index = int(index)
            if scalar_index < 0 or scalar_index >= buffer.size:
                raise ExecutionError(
                    f"load from {e.name!r} out of bounds "
                    f"(index {scalar_index}, size {buffer.size})"
                )
            value = buffer[scalar_index]
            lanes = 1
        for listener in self.listeners:
            listener.on_load(e.name, index, lanes, buffer.dtype.itemsize)
        return value

    def _eval_Call(self, e: E.Call):
        if e.call_type == E.CallType.INTRINSIC:
            fn = _INTRINSICS.get(e.name)
            if fn is None:
                raise ExecutionError(f"unknown intrinsic {e.name!r}")
            args = [self._eval(a) for a in e.args]
            self._arith(max((self._lanes_of(a) for a in args), default=1))
            return fn(*args)
        raise ExecutionError(
            f"call to {e.name!r} survived lowering; it should have become a Load"
        )


def _int_floor_div(a, b):
    if b == 0:
        return 0
    return int(math.floor(a / b))


class _Missing:
    pass


_MISSING = _Missing()

def build_eval_table(cls) -> dict:
    """Map expression class names to ``cls``'s ``_eval_<Name>`` methods.

    Backends subclassing :class:`Executor` rebuild the table so their
    overrides take part in dispatch (dict lookup is measurably faster than
    per-node ``getattr``, which matters for the tree-walking interpreter).
    """
    table = {
        name[len("_eval_"):]: getattr(cls, name)
        for name in dir(cls)
        if name.startswith("_eval_")
    }
    # The front-end Var/RVar classes are Variable subclasses; route them the same way.
    table["Var"] = table["Variable"]
    table["RVar"] = table["Variable"]
    return table


Executor._EVAL_TABLE = build_eval_table(Executor)
