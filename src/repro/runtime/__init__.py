"""Runtime backends: the IR interpreter, the backend registry, and
execution instrumentation used by the machine model.

The vectorized NumPy backend lives in :mod:`repro.codegen` and registers
itself here under the name ``"numpy"``; select backends by name through
:func:`get_backend` / ``Pipeline.realize(backend=...)``.
"""

from repro.runtime.backend import (
    Backend,
    BackendFactory,
    backend_names,
    create_executor,
    get_backend,
    register_backend,
    resolve_backend_name,
    validate_backend_name,
)
from repro.runtime.counters import Counters, ExecutionListener
from repro.runtime.executor import ExecutionError, Executor
from repro.runtime.target import Target, as_target

__all__ = [
    "Executor",
    "ExecutionError",
    "Counters",
    "ExecutionListener",
    "Backend",
    "BackendFactory",
    "Target",
    "as_target",
    "backend_names",
    "create_executor",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "validate_backend_name",
]
