"""Runtime backends: the IR interpreter, the Python code generator, and
execution instrumentation used by the machine model.
"""

from repro.runtime.counters import Counters, ExecutionListener
from repro.runtime.executor import Executor

__all__ = ["Executor", "Counters", "ExecutionListener"]
