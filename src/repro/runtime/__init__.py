"""Runtime backends: the IR interpreter, the backend registry, and
execution instrumentation used by the machine model.

The vectorized NumPy backend and the compile-to-Python source backend live
in :mod:`repro.codegen` and register here under the names ``"numpy"`` and
``"compiled"``; select backends through :func:`get_backend` /
``Pipeline.realize(target=...)`` (a :class:`Target` carries the backend name
plus execution parameters such as ``threads``).
"""

from repro.runtime.backend import (
    Backend,
    BackendFactory,
    backend_names,
    create_executor,
    get_backend,
    register_backend,
    resolve_backend_name,
    validate_backend_name,
)
from repro.runtime.counters import Counters, ExecutionListener
from repro.runtime.disk_cache import (
    CACHE_DIR_ENV_VAR,
    PersistentCache,
    default_cache_dir,
)
from repro.runtime.executor import ExecutionError, Executor
from repro.runtime.target import Target, as_target

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "PersistentCache",
    "default_cache_dir",
    "Executor",
    "ExecutionError",
    "Counters",
    "ExecutionListener",
    "Backend",
    "BackendFactory",
    "Target",
    "as_target",
    "backend_names",
    "create_executor",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "validate_backend_name",
]
