"""Execution instrumentation.

The executor reports every loop, arithmetic operation, load and store to a set
of listeners.  :class:`Counters` is the basic listener used for the trade-off
metrics of Figure 3 (work amplification, reuse distance); the machine model's
cache simulator and cost model are further listeners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ExecutionListener", "Counters"]


class ExecutionListener:
    """Interface for observers of pipeline execution.  All methods are optional."""

    def on_loop_begin(self, name: str, for_type, extent: int) -> None:
        """A loop is entered (once per loop, not per iteration)."""

    def on_loop_end(self, name: str, for_type, extent: int) -> None:
        """A loop is exited."""

    def on_produce(self, name: str) -> None:
        """Computation of a stage begins."""

    def on_arith(self, count: int, lanes: int) -> None:
        """``count`` arithmetic operations of ``lanes`` vector lanes were issued."""

    def on_load(self, buffer: str, index, lanes: int, element_bytes: int) -> None:
        """A load from ``buffer`` at flat index ``index`` (scalar or per-lane array)."""

    def on_store(self, buffer: str, index, lanes: int, element_bytes: int) -> None:
        """A store to ``buffer`` at flat index ``index``."""

    def on_allocate(self, buffer: str, size: int, element_bytes: int) -> None:
        """A buffer of ``size`` elements was allocated."""

    def on_free(self, buffer: str) -> None:
        """A buffer went out of scope."""


@dataclass
class Counters(ExecutionListener):
    """Aggregate operation counters for one pipeline execution."""

    arith_ops: int = 0
    vector_ops: int = 0
    scalar_ops: int = 0
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    loops_entered: int = 0
    allocations: int = 0
    peak_allocated_bytes: int = 0
    #: Per-buffer peak: the largest allocation each Func's storage ever
    #: reached.  With storage folding this is the folded size — the number
    #: that must stay constant as a stream grows, asserted per stage rather
    #: than inferred from the total.
    peak_allocated_by_buffer: Dict[str, int] = field(default_factory=dict)
    _live_bytes: int = 0
    _live_sizes: Dict[str, int] = field(default_factory=dict)
    per_stage_ops: Dict[str, int] = field(default_factory=dict)
    _current_stage: str = ""

    def on_loop_begin(self, name: str, for_type, extent: int) -> None:
        self.loops_entered += 1

    def on_produce(self, name: str) -> None:
        self._current_stage = name

    def on_arith(self, count: int, lanes: int) -> None:
        self.arith_ops += count * lanes
        if lanes > 1:
            self.vector_ops += count
        else:
            self.scalar_ops += count
        if self._current_stage:
            self.per_stage_ops[self._current_stage] = (
                self.per_stage_ops.get(self._current_stage, 0) + count * lanes
            )

    def on_load(self, buffer: str, index, lanes: int, element_bytes: int) -> None:
        self.loads += lanes
        self.bytes_loaded += lanes * element_bytes

    def on_store(self, buffer: str, index, lanes: int, element_bytes: int) -> None:
        self.stores += lanes
        self.bytes_stored += lanes * element_bytes

    def on_allocate(self, buffer: str, size: int, element_bytes: int) -> None:
        self.allocations += 1
        nbytes = size * element_bytes
        self._live_bytes += nbytes
        self._live_sizes[buffer] = nbytes
        self.peak_allocated_bytes = max(self.peak_allocated_bytes, self._live_bytes)
        self.peak_allocated_by_buffer[buffer] = max(
            self.peak_allocated_by_buffer.get(buffer, 0), nbytes)

    def on_free(self, buffer: str) -> None:
        self._live_bytes -= self._live_sizes.pop(buffer, 0)

    def summary(self) -> Dict[str, int]:
        """A plain-dict snapshot (used by benchmark reports)."""
        return {
            "arith_ops": self.arith_ops,
            "vector_ops": self.vector_ops,
            "scalar_ops": self.scalar_ops,
            "loads": self.loads,
            "stores": self.stores,
            "bytes_loaded": self.bytes_loaded,
            "bytes_stored": self.bytes_stored,
            "loops_entered": self.loops_entered,
            "allocations": self.allocations,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_allocated_by_buffer": dict(self.peak_allocated_by_buffer),
        }
