"""First-class compilation/execution targets.

A :class:`Target` is a structured descriptor of *where and how* a pipeline
runs: the execution backend, an optional SIMD width and thread count, and an
optional machine profile (for the abstract machine model).  It replaces the
ad-hoc ``backend="interp"|"numpy"`` string + ``REPRO_BACKEND`` environment
variable plumbing: strings (and the environment variable) are still accepted
everywhere and coerced via :meth:`Target.resolve`, but the resolved object is
validated *early* — an unknown backend raises immediately with the list of
registered backends, instead of surfacing as a late failure deep inside
executor creation.

Targets are immutable values: hashable, comparable, serializable, and usable
as compilation-cache key components (:meth:`Target.key`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro.runtime.backend import resolve_backend_name, validate_backend_name

__all__ = ["Target", "as_target"]


@dataclass(frozen=True)
class Target:
    """A structured descriptor of an execution target.

    ``backend`` defaults to the ``REPRO_BACKEND`` environment variable (or
    the interpreter); it is validated against the backend registry at
    construction time.  ``vector_width`` and ``threads`` describe the machine
    the schedule is tuned for (consumed by the cost model as overrides of the
    named ``profile``); ``threads`` additionally sizes the thread pool the
    ``compiled`` backend runs parallel loops on.  Backends that cannot honour
    a parameter simply ignore it.
    """

    backend: Optional[str] = None
    vector_width: Optional[int] = None
    threads: Optional[int] = None
    #: Name of a machine profile (see :data:`repro.machine.profiles.PROFILES`).
    profile: Optional[str] = None
    #: How ``ForType.PARALLEL`` loops execute on the ``compiled`` backend:
    #: ``"thread"`` (the default, a shared thread pool) or ``"process"`` (a
    #: process pool with shared-memory buffers, sidestepping the GIL; falls
    #: back to threads when process pools are unavailable).  ``threads``
    #: sizes the worker pool in either mode.
    parallel: Optional[str] = None

    #: The parallel modes :attr:`parallel` accepts (``None`` means thread).
    PARALLEL_MODES = ("thread", "process")

    def __post_init__(self):
        resolved = validate_backend_name(resolve_backend_name(self.backend))
        object.__setattr__(self, "backend", resolved)
        if self.parallel is not None and self.parallel not in self.PARALLEL_MODES:
            raise ValueError(
                f"Target.parallel must be one of {self.PARALLEL_MODES} (or None), "
                f"got {self.parallel!r}")
        profile = self.profile
        if profile is not None and not isinstance(profile, str):
            # Accept MachineProfile instances; store the stable name.
            profile = profile.name
            object.__setattr__(self, "profile", profile)
        if profile is not None:
            from repro.machine.profiles import get_profile

            get_profile(profile)  # validate early
        for attr in ("vector_width", "threads"):
            value = getattr(self, attr)
            if value is not None:
                if int(value) <= 0:
                    raise ValueError(f"Target.{attr} must be positive, got {value}")
                object.__setattr__(self, attr, int(value))

    # ------------------------------------------------------------------
    # coercion
    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, value: Union[None, str, "Target", Dict]) -> "Target":
        """Coerce target-like values: None (env var / default), a backend
        name string, a serialized dict, or a Target (returned unchanged)."""
        if isinstance(value, Target):
            return value
        if value is None:
            return cls()
        if isinstance(value, str):
            return cls(backend=value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(f"cannot interpret {type(value).__name__} as a Target")

    def with_backend(self, backend: str) -> "Target":
        return replace(self, backend=backend)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def machine_profile(self):
        """The :class:`MachineProfile` this target models.

        The named ``profile`` (default: the paper's Xeon W3520) with
        ``vector_width`` / ``threads`` overrides applied.
        """
        from dataclasses import replace as dc_replace

        from repro.machine.profiles import XEON_W3520, get_profile

        profile = get_profile(self.profile) if self.profile else XEON_W3520
        overrides = {}
        if self.vector_width is not None:
            overrides["vector_width"] = self.vector_width
        if self.threads is not None:
            overrides["cores"] = self.threads
        return dc_replace(profile, **overrides) if overrides else profile

    def key(self) -> Tuple:
        """A hashable cache-key component identifying this target."""
        return (self.backend, self.vector_width, self.threads, self.profile,
                self.parallel)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "vector_width": self.vector_width,
            "threads": self.threads,
            "profile": self.profile,
            "parallel": self.parallel,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Target":
        return cls(
            backend=data.get("backend"),
            vector_width=data.get("vector_width"),
            threads=data.get("threads"),
            profile=data.get("profile"),
            parallel=data.get("parallel"),
        )

    def __str__(self) -> str:
        parts = [self.backend]
        if self.vector_width is not None:
            parts.append(f"vec{self.vector_width}")
        if self.threads is not None:
            parts.append(f"threads{self.threads}")
        if self.parallel is not None:
            parts.append(self.parallel)
        if self.profile is not None:
            parts.append(self.profile)
        return "-".join(parts)


def as_target(value) -> Target:
    """Alias for :meth:`Target.resolve` (symmetry with ``as_schedule``)."""
    return Target.resolve(value)
