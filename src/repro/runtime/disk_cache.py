"""Persistent on-disk compile cache (warm starts across processes).

The in-memory LRU in :class:`~repro.pipeline.Pipeline` amortizes lowering
within one process; a serving deployment restarts processes all the time, so
this module persists compiled programs under a configurable directory.  Each
entry is one JSON file storing the generated source (the ``compiled``
backend's Python program, or the ``native`` backend's C translation unit)
plus the run-time metadata a restored
:class:`~repro.pipeline.CompiledPipeline` needs (output name, dims, dtype,
rounded shape, baked image shapes).  The native backend additionally stores
its built shared object as a content-addressed *blob* (``<digest>.so``)
beside the JSON entries, so a warm start ``dlopen``\\ s machine code directly
— zero lowerings *and* zero C-compiler invocations; a missing or evicted
blob degrades to recompiling the stored C source (still zero lowerings).

Design constraints, in order:

* **Never wrong**: entries embed the full cache-key string and a format
  version; both must match exactly on load, so a hash collision or a format
  change degrades to a recompile, never a wrong program.
* **Never crash**: a truncated, corrupt, or unreadable file counts as a
  miss (tracked in :attr:`PersistentCache.errors`) and is recompiled over.
* **Concurrent-writer safe**: stores write to a temp file in the same
  directory and ``os.replace`` it into place — readers see either the old
  or the new complete entry, and the last writer wins.
* **Bounded**: the directory is capped at ``REPRO_CACHE_MAX_BYTES``
  (default 256 MiB; ``0`` disables the bound).  When a store pushes the
  total over the cap, the least-recently-used entries — by mtime, which
  loads refresh — are evicted until it fits.  A long-lived deployment that
  compiles many (schedule, sizes) variants therefore cannot fill the disk.

The default cache directory comes from the ``REPRO_CACHE_DIR`` environment
variable (unset ⇒ persistence disabled); tests and the serving demo pass an
explicit directory instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["PersistentCache", "CACHE_DIR_ENV_VAR", "CACHE_MAX_BYTES_ENV_VAR",
           "DEFAULT_MAX_BYTES", "default_cache_dir", "default_max_bytes"]

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"

#: Bump when the payload layout changes; old entries then read as misses.
FORMAT_VERSION = 1

#: Default size bound for the cache directory (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_cache_dir() -> Optional[str]:
    """The ``REPRO_CACHE_DIR`` directory, or None when persistence is off."""
    return os.environ.get(CACHE_DIR_ENV_VAR) or None


def default_max_bytes() -> int:
    """The size bound from ``REPRO_CACHE_MAX_BYTES`` (0 ⇒ unbounded).

    An unparsable value falls back to the default: misconfiguration must
    degrade to the safe bound, never to an unbounded cache or a crash.
    """
    raw = os.environ.get(CACHE_MAX_BYTES_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MAX_BYTES


class PersistentCache:
    """A directory of compiled-program entries keyed by exact key strings.

    ``key_str`` is the printable form of the Pipeline compile-cache key
    (schedule digest, sizes, target, options, algorithm fingerprint, image
    shapes) — anything that would change the generated program changes the
    string.  Filenames are a hash of the key; the key itself is stored in
    the entry and compared on load, so collisions cannot alias.
    """

    def __init__(self, directory, max_bytes: Optional[int] = None):
        self.directory = Path(directory)
        #: Total-size cap in bytes; 0 disables eviction.  Defaults to
        #: ``REPRO_CACHE_MAX_BYTES`` (itself defaulting to 256 MiB).
        self.max_bytes = default_max_bytes() if max_bytes is None else max(0, int(max_bytes))
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.stores = 0
        self.evictions = 0

    def _path(self, key_str: str) -> Path:
        digest = hashlib.sha256(key_str.encode("utf-8")).hexdigest()
        return self.directory / f"{digest[:32]}.json"

    def load(self, key_str: str) -> Optional[dict]:
        """The stored payload for ``key_str``, or None (miss or bad entry)."""
        path = self._path(key_str)
        try:
            data = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.errors += 1
            return None
        try:
            payload = json.loads(data)
            if payload.get("format") != FORMAT_VERSION or \
                    payload.get("key") != key_str or \
                    not isinstance(payload.get("source"), str):
                raise ValueError("stale or foreign cache entry")
        except Exception:
            # Truncated write, corruption, format drift: recompile over it.
            self.errors += 1
            return None
        self.hits += 1
        # Refresh the entry's mtime so eviction is least-recently-*used*,
        # not least-recently-written (best effort; read-only dirs are fine).
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def store(self, key_str: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key_str`` (best effort).

        A failure to persist (read-only directory, disk full) is swallowed:
        the cache accelerates restarts, it must never fail a compile.
        """
        path = self._path(key_str)
        record = dict(payload)
        record["format"] = FORMAT_VERSION
        record["key"] = key_str
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=path.stem, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1
        self._enforce_limit(keep=path)

    # -- binary blobs (native .so artifacts) ----------------------------
    def blob_path(self, digest: str) -> Path:
        """Where the blob for a content ``digest`` lives (may not exist)."""
        return self.directory / f"{digest}.so"

    def store_blob(self, digest: str, source_path: str) -> Optional[Path]:
        """Copy a built artifact into the cache under its content digest.

        Same guarantees as :meth:`store`: atomic (temp + ``os.replace``),
        best effort (failures return None — the cache accelerates restarts,
        it must never fail a compile), and counted against the size bound.
        Content addressing makes the copy idempotent: an existing blob with
        the same digest is already the right bytes.
        """
        path = self.blob_path(digest)
        if path.exists():
            return path
        temp_name = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=path.stem[:32], suffix=".tmp")
            os.close(fd)
            shutil.copyfile(source_path, temp_name)
            os.replace(temp_name, path)
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            return None
        self.stores += 1
        self._enforce_limit(keep=path)
        return path

    def _enforce_limit(self, keep: Optional[Path] = None) -> None:
        """Evict least-recently-used entries until the directory fits
        ``max_bytes``.  The just-stored entry (``keep``) is never evicted —
        a single entry larger than the bound must not thrash.  Best effort:
        any filesystem race (another process evicting the same file) is
        ignored."""
        if not self.max_bytes:
            return
        entries = []
        total = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not (name.endswith(".json") or name.endswith(".so")):
                continue
            path = self.directory / name
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path.name == keep.name:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PersistentCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, errors={self.errors}, "
                f"stores={self.stores}, evictions={self.evictions})")
