"""Persistent on-disk compile cache (warm starts across processes).

The in-memory LRU in :class:`~repro.pipeline.Pipeline` amortizes lowering
within one process; a serving deployment restarts processes all the time, so
this module persists compiled programs under a configurable directory.  Each
entry is one JSON file storing the generated Python source (the ``compiled``
backend's program *is* source text — nothing binary to serialize) plus the
run-time metadata a restored :class:`~repro.pipeline.CompiledPipeline` needs
(output name, dims, dtype, rounded shape, baked image shapes).

Design constraints, in order:

* **Never wrong**: entries embed the full cache-key string and a format
  version; both must match exactly on load, so a hash collision or a format
  change degrades to a recompile, never a wrong program.
* **Never crash**: a truncated, corrupt, or unreadable file counts as a
  miss (tracked in :attr:`PersistentCache.errors`) and is recompiled over.
* **Concurrent-writer safe**: stores write to a temp file in the same
  directory and ``os.replace`` it into place — readers see either the old
  or the new complete entry, and the last writer wins.

The default cache directory comes from the ``REPRO_CACHE_DIR`` environment
variable (unset ⇒ persistence disabled); tests and the serving demo pass an
explicit directory instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["PersistentCache", "CACHE_DIR_ENV_VAR", "default_cache_dir"]

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Bump when the payload layout changes; old entries then read as misses.
FORMAT_VERSION = 1


def default_cache_dir() -> Optional[str]:
    """The ``REPRO_CACHE_DIR`` directory, or None when persistence is off."""
    return os.environ.get(CACHE_DIR_ENV_VAR) or None


class PersistentCache:
    """A directory of compiled-program entries keyed by exact key strings.

    ``key_str`` is the printable form of the Pipeline compile-cache key
    (schedule digest, sizes, target, options, algorithm fingerprint, image
    shapes) — anything that would change the generated program changes the
    string.  Filenames are a hash of the key; the key itself is stored in
    the entry and compared on load, so collisions cannot alias.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.stores = 0

    def _path(self, key_str: str) -> Path:
        digest = hashlib.sha256(key_str.encode("utf-8")).hexdigest()
        return self.directory / f"{digest[:32]}.json"

    def load(self, key_str: str) -> Optional[dict]:
        """The stored payload for ``key_str``, or None (miss or bad entry)."""
        path = self._path(key_str)
        try:
            data = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.errors += 1
            return None
        try:
            payload = json.loads(data)
            if payload.get("format") != FORMAT_VERSION or \
                    payload.get("key") != key_str or \
                    not isinstance(payload.get("source"), str):
                raise ValueError("stale or foreign cache entry")
        except Exception:
            # Truncated write, corruption, format drift: recompile over it.
            self.errors += 1
            return None
        self.hits += 1
        return payload

    def store(self, key_str: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key_str`` (best effort).

        A failure to persist (read-only directory, disk full) is swallowed:
        the cache accelerates restarts, it must never fail a compile.
        """
        path = self._path(key_str)
        record = dict(payload)
        record["format"] = FORMAT_VERSION
        record["key"] = key_str
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=path.stem, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PersistentCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, errors={self.errors}, "
                f"stores={self.stores})")
