"""Execution backend protocol and registry.

A *backend* turns a :class:`~repro.compiler.lower.LoweredPipeline` into
results over numpy buffers.  All backends share the executor binding API
(:meth:`bind`, :meth:`bind_input`, :meth:`provide_buffer`, :meth:`run`), so
the :class:`~repro.pipeline.Pipeline` driver, the autotuner's evaluators and
the benchmark harness select one by name:

* ``"interp"`` — the scalar tree-walking interpreter
  (:class:`~repro.runtime.executor.Executor`).  The reference backend: exact
  per-operation instrumentation for the machine model, but slow.
* ``"numpy"`` — the vectorized NumPy backend
  (:class:`~repro.codegen.numpy_backend.NumpyExecutor`).  Batches innermost
  loops into whole-array operations; bit-identical to the interpreter and
  10-100x faster, but instrumentation sees batched (per-array) events.
* ``"compiled"`` — the compile-to-Python source backend
  (:class:`~repro.codegen.source_backend.CompiledExecutor`).  Emits one
  Python/NumPy function per lowered pipeline (``compile()``+``exec()``'d
  once), runs ``ForType.PARALLEL`` loops on a thread pool sized by
  ``Target.threads``, and drives no instrumentation listeners.  The fastest
  pure-Python backend; bit-identical to the interpreter.
* ``"native"`` — the compile-to-C backend
  (:class:`~repro.codegen.c_backend.NativeExecutor`).  Emits one C
  translation unit per lowered pipeline, builds it into a shared object with
  the system C compiler (OpenMP parallel-for when available), and calls it
  through :mod:`ctypes`.  Bit-identical to the interpreter and the fastest
  backend by far; requires a C toolchain (see
  :mod:`repro.codegen.c_toolchain`).

The default is ``"interp"``; set the ``REPRO_BACKEND`` environment variable
or pass ``backend=``/``target=`` to :meth:`Pipeline.realize` to override.

Backend factories are called as ``factory(lowered, listeners=..., target=...)``
where ``target`` is the resolved :class:`~repro.runtime.target.Target`;
backends that cannot honour parts of the target (e.g. ``threads``) ignore
them.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.compiler.lower import LoweredPipeline
from repro.runtime.counters import ExecutionListener

__all__ = [
    "Backend",
    "BackendFactory",
    "register_backend",
    "get_backend",
    "backend_names",
    "resolve_backend_name",
    "validate_backend_name",
    "create_executor",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
]

DEFAULT_BACKEND = "interp"
BACKEND_ENV_VAR = "REPRO_BACKEND"


@runtime_checkable
class Backend(Protocol):
    """What the pipeline driver requires of an executor instance."""

    def bind(self, name: str, value) -> None: ...

    def bind_input(self, name: str, array: np.ndarray) -> None: ...

    def provide_buffer(self, name: str, flat_array: np.ndarray) -> None: ...

    def run(self) -> None: ...


#: A backend is registered as a factory: (lowered, listeners) -> Backend.
BackendFactory = Callable[..., Backend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _BACKENDS[name] = factory


def _ensure_builtin_backends() -> None:
    # Imported lazily to avoid import cycles (the executor imports runtime
    # modules; codegen imports the executor).
    if "interp" not in _BACKENDS:
        from repro.runtime.executor import Executor

        register_backend("interp", Executor)
    if "numpy" not in _BACKENDS:
        from repro.codegen.numpy_backend import NumpyExecutor

        register_backend("numpy", NumpyExecutor)
    if "compiled" not in _BACKENDS:
        from repro.codegen.source_backend import CompiledExecutor

        register_backend("compiled", CompiledExecutor)
    if "native" not in _BACKENDS:
        from repro.codegen.c_backend import NativeExecutor

        register_backend("native", NativeExecutor)


def backend_names() -> tuple:
    """The names of all registered backends."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve an explicit name, the ``REPRO_BACKEND`` env var, or the default."""
    if name is not None:
        return name
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def validate_backend_name(name: str) -> str:
    """Check a backend name against the registry, with a clear early error.

    :class:`~repro.runtime.target.Target` calls this at construction time, so
    an unknown ``backend=`` argument or a bad ``REPRO_BACKEND`` value fails
    before any lowering work happens, listing the registered backends.
    """
    _ensure_builtin_backends()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available backends: {', '.join(backend_names())} "
            f"(selected via backend=/Target(backend=...) or the {BACKEND_ENV_VAR} "
            "environment variable)"
        )
    return name


def get_backend(name: Optional[str] = None) -> BackendFactory:
    """Look up a backend factory by (resolved) name."""
    _ensure_builtin_backends()
    return _BACKENDS[validate_backend_name(resolve_backend_name(name))]


def create_executor(lowered: LoweredPipeline,
                    listeners: Iterable[ExecutionListener] = (),
                    backend: Optional[str] = None,
                    target=None) -> Backend:
    """Instantiate a backend over a lowered pipeline.

    ``target`` (a :class:`~repro.runtime.target.Target`, or anything its
    ``resolve`` accepts) takes precedence over the legacy ``backend`` string.
    The resolved Target is forwarded to the backend factory, so execution
    parameters such as ``Target.threads`` reach the runtime.
    """
    from repro.runtime.target import Target  # local import: Target imports us

    resolved = Target.resolve(target if target is not None else backend)
    factory = get_backend(resolved.backend)
    if _factory_accepts_target(factory):
        return factory(lowered, listeners=listeners, target=resolved)
    return factory(lowered, listeners=listeners)


#: Memoized per factory: signature inspection is too slow for run() hot paths.
_ACCEPTS_TARGET: Dict[BackendFactory, bool] = {}


def _factory_accepts_target(factory: BackendFactory) -> bool:
    """Whether a factory takes the ``target=`` keyword.

    Third-party factories registered under the pre-Target contract
    (``factory(lowered, listeners=...)``) keep working: target is only
    passed when the signature accepts it.
    """
    accepts = _ACCEPTS_TARGET.get(factory)
    if accepts is None:
        import inspect

        parameters = inspect.signature(factory).parameters
        accepts = "target" in parameters or any(
            p.kind == p.VAR_KEYWORD for p in parameters.values())
        _ACCEPTS_TARGET[factory] = accepts
    return accepts
