"""Execution backend protocol and registry.

A *backend* turns a :class:`~repro.compiler.lower.LoweredPipeline` into
results over numpy buffers.  All backends share the executor binding API
(:meth:`bind`, :meth:`bind_input`, :meth:`provide_buffer`, :meth:`run`), so
the :class:`~repro.pipeline.Pipeline` driver, the autotuner's evaluators and
the benchmark harness select one by name:

* ``"interp"`` — the scalar tree-walking interpreter
  (:class:`~repro.runtime.executor.Executor`).  The reference backend: exact
  per-operation instrumentation for the machine model, but slow.
* ``"numpy"`` — the vectorized NumPy backend
  (:class:`~repro.codegen.numpy_backend.NumpyExecutor`).  Batches innermost
  loops into whole-array operations; bit-identical to the interpreter and
  10-100x faster, but instrumentation sees batched (per-array) events.

The default is ``"interp"``; set the ``REPRO_BACKEND`` environment variable
or pass ``backend=`` to :meth:`Pipeline.realize` to override.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.compiler.lower import LoweredPipeline
from repro.runtime.counters import ExecutionListener

__all__ = [
    "Backend",
    "BackendFactory",
    "register_backend",
    "get_backend",
    "backend_names",
    "resolve_backend_name",
    "validate_backend_name",
    "create_executor",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
]

DEFAULT_BACKEND = "interp"
BACKEND_ENV_VAR = "REPRO_BACKEND"


@runtime_checkable
class Backend(Protocol):
    """What the pipeline driver requires of an executor instance."""

    def bind(self, name: str, value) -> None: ...

    def bind_input(self, name: str, array: np.ndarray) -> None: ...

    def provide_buffer(self, name: str, flat_array: np.ndarray) -> None: ...

    def run(self) -> None: ...


#: A backend is registered as a factory: (lowered, listeners) -> Backend.
BackendFactory = Callable[..., Backend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _BACKENDS[name] = factory


def _ensure_builtin_backends() -> None:
    # Imported lazily to avoid import cycles (the executor imports runtime
    # modules; codegen imports the executor).
    if "interp" not in _BACKENDS:
        from repro.runtime.executor import Executor

        register_backend("interp", Executor)
    if "numpy" not in _BACKENDS:
        from repro.codegen.numpy_backend import NumpyExecutor

        register_backend("numpy", NumpyExecutor)


def backend_names() -> tuple:
    """The names of all registered backends."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve an explicit name, the ``REPRO_BACKEND`` env var, or the default."""
    if name is not None:
        return name
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def validate_backend_name(name: str) -> str:
    """Check a backend name against the registry, with a clear early error.

    :class:`~repro.runtime.target.Target` calls this at construction time, so
    an unknown ``backend=`` argument or a bad ``REPRO_BACKEND`` value fails
    before any lowering work happens, listing the registered backends.
    """
    _ensure_builtin_backends()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available backends: {', '.join(backend_names())} "
            f"(selected via backend=/Target(backend=...) or the {BACKEND_ENV_VAR} "
            "environment variable)"
        )
    return name


def get_backend(name: Optional[str] = None) -> BackendFactory:
    """Look up a backend factory by (resolved) name."""
    _ensure_builtin_backends()
    return _BACKENDS[validate_backend_name(resolve_backend_name(name))]


def create_executor(lowered: LoweredPipeline,
                    listeners: Iterable[ExecutionListener] = (),
                    backend: Optional[str] = None,
                    target=None) -> Backend:
    """Instantiate a backend over a lowered pipeline.

    ``target`` (a :class:`~repro.runtime.target.Target`, or anything its
    ``resolve`` accepts) takes precedence over the legacy ``backend`` string.
    """
    if target is not None:
        backend = getattr(target, "backend", None) or str(target)
    return get_backend(backend)(lowered, listeners=listeners)
