"""Reference resampling pyramid (matches repro.apps.pyramid exactly).

Plain numpy mirroring :func:`repro.apps.common.resample_axis` operation for
operation — same computed coordinates, same clamps, same float32 two-tap
blend — so the comparison is bit-exact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pyramid_ref"]


def _resample_axis_ref(arr: np.ndarray, num: int, den: int,
                       out_size: int, axis: int) -> np.ndarray:
    src_size = arr.shape[axis]
    scaled = np.arange(out_size) * int(num)
    base = scaled // int(den)
    frac = (scaled % int(den)).astype(np.float32) / np.float32(den)
    lo = np.maximum(np.minimum(base, src_size - 1), 0)
    hi = np.maximum(np.minimum(base + 1, src_size - 1), 0)
    a = np.take(arr, lo, axis=axis)
    b = np.take(arr, hi, axis=axis)
    shape = [1, 1]
    shape[axis] = out_size
    frac = frac.reshape(shape)
    return a * (np.float32(1.0) - frac) + b * frac


def pyramid_ref(image: np.ndarray, levels: int = 2) -> np.ndarray:
    """Decimate by 3/2 per axis ``levels`` times, then interpolate back by 2/3."""
    from repro.apps.pyramid import pyramid_level_sizes

    arr = np.asarray(image, dtype=np.float32)
    width, height = arr.shape
    sizes = pyramid_level_sizes(width, height, levels)
    for level in range(1, levels + 1):
        w, h = sizes[level]
        arr = _resample_axis_ref(arr, 3, 2, w, axis=0)
        arr = _resample_axis_ref(arr, 3, 2, h, axis=1)
    for level in range(levels, 0, -1):
        w, h = sizes[level - 1]
        arr = _resample_axis_ref(arr, 2, 3, w, axis=0)
        arr = _resample_axis_ref(arr, 2, 3, h, axis=1)
    return arr
