"""Reference ("expert baseline") implementations in plain numpy.

These play the role of the hand-written C / intrinsics / CUDA comparators of
the paper's Figure 7: they are the correctness oracles for every schedule the
compiler produces, and their (vectorized numpy) line counts stand in for the
"lines expert" column.  Where a reference clamps boundaries per stage instead
of propagating the infinite-domain semantics exactly, the corresponding tests
compare a cropped interior region; this is noted per function.
"""

from repro.reference.blur_ref import blur_ref
from repro.reference.unsharp_ref import unsharp_ref
from repro.reference.histogram_ref import histogram_equalize_ref
from repro.reference.bilateral_grid_ref import bilateral_grid_ref
from repro.reference.camera_pipe_ref import camera_pipe_ref
from repro.reference.interpolate_ref import interpolate_ref
from repro.reference.local_laplacian_ref import local_laplacian_ref
from repro.reference.video_ref import video_ref
from repro.reference.rasterize_ref import rasterize_ref
from repro.reference.pyramid_ref import pyramid_ref

__all__ = [
    "blur_ref",
    "unsharp_ref",
    "histogram_equalize_ref",
    "bilateral_grid_ref",
    "camera_pipe_ref",
    "interpolate_ref",
    "local_laplacian_ref",
    "video_ref",
    "rasterize_ref",
    "pyramid_ref",
]
