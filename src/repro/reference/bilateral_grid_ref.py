"""Reference bilateral grid (matches repro.apps.bilateral_grid).

Mirrors the DSL pipeline exactly, including the clamp-to-edge sampling used
when grid cells near the image border gather their samples, so the comparison
holds over the whole output (no interior cropping needed).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bilateral_grid_ref"]


def bilateral_grid_ref(image: np.ndarray, s_sigma: int = 8, r_sigma: float = 0.1) -> np.ndarray:
    """Expert-baseline bilateral filter via the grid, over a float32 image in [0, 1]."""
    image = np.asarray(image, dtype=np.float32)
    width, height = image.shape
    clamped = np.clip(image, 0.0, 1.0)

    # The reconstruction reads grid cells [x/s .. x/s+1] plus a blur radius of 2
    # along every axis, so build the grid over a correspondingly padded range.
    pad = 3
    grid_w = (width - 1) // s_sigma + 1 + 2 * pad + 1
    grid_h = (height - 1) // s_sigma + 1 + 2 * pad + 1
    num_bins = int(round(1.0 / r_sigma)) + 1
    zpad = 3
    grid = np.zeros((grid_w, grid_h, num_bins + 2 * zpad, 2), dtype=np.float32)

    def sample(ix, iy):
        return clamped[np.clip(ix, 0, width - 1), np.clip(iy, 0, height - 1)]

    for cx in range(-pad, grid_w - pad):
        for cy in range(-pad, grid_h - pad):
            for rx in range(s_sigma):
                for ry in range(s_sigma):
                    val = sample(cx * s_sigma + rx - s_sigma // 2,
                                 cy * s_sigma + ry - s_sigma // 2)
                    val = np.float32(np.clip(val, 0.0, 1.0))
                    zi = int(val * (1.0 / r_sigma) + 0.5)
                    grid[cx + pad, cy + pad, zi + zpad, 0] += val
                    grid[cx + pad, cy + pad, zi + zpad, 1] += 1.0

    # 5-point binomial blur along each axis (matches the DSL's blurz/blurx/blury).
    def blur_axis(data, axis):
        blurred = np.zeros_like(data)
        taps = [(-2, 1.0), (-1, 4.0), (0, 6.0), (1, 4.0), (2, 1.0)]
        for offset, weight in taps:
            shifted = np.roll(data, -offset, axis=axis)
            # Out-of-range cells contribute zero (they are zero in the padded grid).
            if offset > 0:
                index = [slice(None)] * data.ndim
                index[axis] = slice(-offset, None)
                shifted[tuple(index)] = 0.0
            elif offset < 0:
                index = [slice(None)] * data.ndim
                index[axis] = slice(0, -offset)
                shifted[tuple(index)] = 0.0
            blurred += np.float32(weight) * shifted
        return blurred / np.float32(16.0)

    blurred = blur_axis(blur_axis(blur_axis(grid, 2), 0), 1)

    # Trilinear reconstruction at data-dependent coordinates.
    xs = np.arange(width)[:, None]
    ys = np.arange(height)[None, :]
    val = np.clip(clamped, 0.0, 1.0)
    zv = val * np.float32(1.0 / r_sigma)
    zi = zv.astype(np.int32)
    zf = zv - zi.astype(np.float32)
    xf = (xs % s_sigma).astype(np.float32) / np.float32(s_sigma)
    yf = (ys % s_sigma).astype(np.float32) / np.float32(s_sigma)
    xi = xs // s_sigma
    yi = ys // s_sigma

    def lerp(a, b, w):
        return a + w * (b - a)

    def grid_at(gx, gy, gz, channel):
        return blurred[gx + pad, gy + pad, gz + zpad, channel]

    result = np.zeros((width, height), dtype=np.float32)
    for channel in range(2):
        interpolated = lerp(
            lerp(lerp(grid_at(xi, yi, zi, channel), grid_at(xi + 1, yi, zi, channel), xf),
                 lerp(grid_at(xi, yi + 1, zi, channel), grid_at(xi + 1, yi + 1, zi, channel), xf),
                 yf),
            lerp(lerp(grid_at(xi, yi, zi + 1, channel), grid_at(xi + 1, yi, zi + 1, channel), xf),
                 lerp(grid_at(xi, yi + 1, zi + 1, channel), grid_at(xi + 1, yi + 1, zi + 1, channel), xf),
                 yf),
            zf,
        )
        if channel == 0:
            numerator = interpolated
        else:
            denominator = interpolated
    denominator = np.where(denominator == 0.0, 1.0, denominator)
    result = numerator / denominator
    return result.astype(np.float32)
