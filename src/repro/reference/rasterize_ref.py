"""Reference scanline rasterizer (matches repro.apps.rasterize exactly).

Plain numpy, one primitive at a time in list order — the same arithmetic, in
the same order, all in float32, so the comparison is bit-exact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rasterize_ref"]


def rasterize_ref(width: int, height: int, prims: np.ndarray) -> np.ndarray:
    """Composite ``prims`` rows (x0, y0, x1, y1, value, alpha) over the
    procedural background, in order, with fractional box coverage."""
    prims = np.asarray(prims, dtype=np.float32)
    xi = np.arange(width)[:, None]
    yi = np.arange(height)[None, :]
    image = np.broadcast_to(
        ((xi + yi) % 8).astype(np.float32) / np.float32(8.0),
        (width, height)).copy()
    fx = xi.astype(np.float32)
    fy = yi.astype(np.float32)
    one = np.float32(1.0)
    zero = np.float32(0.0)
    for x0, y0, x1, y1, value, alpha in prims:
        # clamp(e, lo, hi) in the DSL is max(min(e, hi), lo); mirror exactly.
        covx = np.maximum(np.minimum(
            np.minimum(x1, fx + one) - np.maximum(x0, fx), one), zero)
        covy = np.maximum(np.minimum(
            np.minimum(y1, fy + one) - np.maximum(y0, fy), one), zero)
        a = covx * covy * alpha
        image = image * (one - a) + value * a
    return image
