"""Reference local Laplacian filter (matches repro.apps.local_laplacian).

The reference mirrors the DSL pipeline stage by stage with clamp-to-edge reads
at each pyramid level, so it agrees with the pipeline everywhere except a
border of :func:`local_laplacian_margin` pixels, where the infinite-domain and
per-level-clamped boundary treatments diverge.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["local_laplacian_ref", "local_laplacian_margin"]


def local_laplacian_margin(levels: int = 4) -> int:
    """The output border (in pixels) that may differ from the DSL pipeline."""
    return 3 * 2 ** levels


def _clamped(plane: np.ndarray, ix, iy):
    return plane[np.clip(ix, 0, plane.shape[0] - 1), np.clip(iy, 0, plane.shape[1] - 1)]


def _downsample(plane: np.ndarray) -> np.ndarray:
    """[1 3 3 1]/8 separable downsample (matches the DSL's DOWN stage)."""
    w = (plane.shape[0] + 1) // 2
    h = (plane.shape[1] + 1) // 2
    xs = np.arange(w)[:, None]
    ys_full = np.arange(plane.shape[1])[None, :]
    downx = (
        _clamped(plane, 2 * xs - 1, ys_full) + 3.0 * _clamped(plane, 2 * xs, ys_full)
        + 3.0 * _clamped(plane, 2 * xs + 1, ys_full) + _clamped(plane, 2 * xs + 2, ys_full)
    ) / 8.0

    def clamped_dx(ix, iy):
        return downx[np.clip(ix, 0, downx.shape[0] - 1), np.clip(iy, 0, downx.shape[1] - 1)]

    xs2 = np.arange(w)[:, None]
    ys = np.arange(h)[None, :]
    downy = (
        clamped_dx(xs2, 2 * ys - 1) + 3.0 * clamped_dx(xs2, 2 * ys)
        + 3.0 * clamped_dx(xs2, 2 * ys + 1) + clamped_dx(xs2, 2 * ys + 2)
    ) / 8.0
    return downy.astype(np.float32)


def _upsample(plane: np.ndarray, out_w: int, out_h: int) -> np.ndarray:
    """Linear 2x upsample (matches the DSL's UP stage)."""
    xs = np.arange(out_w)[:, None]
    ys_full = np.arange(plane.shape[1])[None, :]
    upx = 0.25 * _clamped(plane, xs // 2 - 1 + 2 * (xs % 2), ys_full) + \
        0.75 * _clamped(plane, xs // 2, ys_full)

    def clamped_ux(ix, iy):
        return upx[np.clip(ix, 0, upx.shape[0] - 1), np.clip(iy, 0, upx.shape[1] - 1)]

    xs2 = np.arange(out_w)[:, None]
    ys = np.arange(out_h)[None, :]
    upy = 0.25 * clamped_ux(xs2, ys // 2 - 1 + 2 * (ys % 2)) + 0.75 * clamped_ux(xs2, ys // 2)
    return upy.astype(np.float32)


def local_laplacian_ref(image: np.ndarray, levels: int = 4, intensity_levels: int = 8,
                        alpha: float = 1.0, beta: float = 1.0) -> np.ndarray:
    """Expert-baseline local Laplacian filter over a float32 grayscale image in [0, 1]."""
    image = np.asarray(image, dtype=np.float32)
    gray = np.clip(image, 0.0, 1.0)
    width, height = gray.shape
    lut_samples = 256 * 8

    # Remapping LUT.
    idx = np.arange(lut_samples, dtype=np.float32)
    fx = (idx - lut_samples // 2) / 256.0
    remap_lut = (alpha * fx * np.exp(-fx * fx / 2.0)).astype(np.float32)

    # Remapped Gaussian pyramids (k = intensity level).
    K = intensity_levels
    g_pyramid: List[np.ndarray] = []
    level_values = (np.arange(K, dtype=np.float32) / np.float32(max(K - 1, 1)))
    g0 = np.zeros((width, height, K), dtype=np.float32)
    for k in range(K):
        lut_index = np.clip(
            (gray * np.float32(256 * (K - 1)) + 0.5).astype(np.int32) - 256 * k + lut_samples // 2,
            0, lut_samples - 1,
        )
        g0[:, :, k] = beta * (gray - level_values[k]) + level_values[k] + remap_lut[lut_index]
    g_pyramid.append(g0)
    for _j in range(1, levels):
        prev = g_pyramid[-1]
        down = np.stack([_downsample(prev[:, :, k]) for k in range(K)], axis=2)
        g_pyramid.append(down)

    # The input's own Gaussian pyramid.
    in_g_pyramid: List[np.ndarray] = [gray]
    for _j in range(1, levels):
        in_g_pyramid.append(_downsample(in_g_pyramid[-1]))

    # Laplacian pyramid of the remapped copies.
    l_pyramid: List[np.ndarray] = [None] * levels
    l_pyramid[levels - 1] = g_pyramid[levels - 1]
    for j in range(levels - 2, -1, -1):
        finer = g_pyramid[j]
        up = np.stack(
            [_upsample(g_pyramid[j + 1][:, :, k], finer.shape[0], finer.shape[1])
             for k in range(K)],
            axis=2,
        )
        l_pyramid[j] = finer - up

    # Output Laplacian pyramid via data-dependent interpolation between levels.
    out_l_pyramid: List[np.ndarray] = []
    for j in range(levels):
        level = in_g_pyramid[j] * np.float32(K - 1)
        li = np.clip(level.astype(np.int32), 0, K - 2)
        lf = level - li.astype(np.float32)
        gathered_lo = np.take_along_axis(l_pyramid[j], li[:, :, None], axis=2)[:, :, 0]
        gathered_hi = np.take_along_axis(l_pyramid[j], (li + 1)[:, :, None], axis=2)[:, :, 0]
        out_l_pyramid.append(((1.0 - lf) * gathered_lo + lf * gathered_hi).astype(np.float32))

    # Collapse.
    out_g = out_l_pyramid[levels - 1]
    for j in range(levels - 2, -1, -1):
        up = _upsample(out_g, out_l_pyramid[j].shape[0], out_l_pyramid[j].shape[1])
        out_g = up + out_l_pyramid[j]

    return np.clip(out_g, 0.0, 1.0).astype(np.float32)
