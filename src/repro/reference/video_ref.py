"""Reference video denoise + tonemap (matches repro.apps.video exactly)."""

from __future__ import annotations

import numpy as np

__all__ = ["video_ref"]


def video_ref(frames: np.ndarray, window: int = 2) -> np.ndarray:
    """Scalar reference for the streaming video pipeline.

    ``frames`` has shape (width, height, n_frames); the result has the same
    shape — one output frame per input frame.  Temporal boundary condition
    is repeat-edge in time (the first frame stands in for the missing
    history), matching ``realize_stream``'s prefill.  Operations replicate
    the DSL pipeline's float32 arithmetic in the same association order, so
    the result is bit-identical to every backend.
    """
    frames = np.asarray(frames, dtype=np.float32)
    n = frames.shape[2]
    # Prepend `window` copies of the first frame: buffer time u = stream
    # frame u - window.
    extended = np.concatenate(
        [np.repeat(frames[:, :, :1], window, axis=2), frames], axis=2)
    padded = np.pad(extended, ((1, 1), (1, 1), (0, 0)), mode="edge")
    denoise_xy = (padded[:-2, 1:-1, :] + padded[1:-1, 1:-1, :]
                  + padded[2:, 1:-1, :] + padded[1:-1, :-2, :]
                  + padded[1:-1, 2:, :]) / np.float32(5.0)
    acc = denoise_xy[:, :, 0:n]
    for dt in range(1, window + 1):
        acc = acc + denoise_xy[:, :, dt:dt + n]
    denoise_t = acc / np.float32(window + 1)
    return denoise_t / (np.float32(1.0) + denoise_t)
