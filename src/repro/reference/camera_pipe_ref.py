"""Reference camera pipeline (matches repro.apps.camera_pipe).

A direct numpy transcription of the same stages: hot-pixel suppression,
Bayer deinterleave, demosaic, color correction, and the gamma/contrast curve
applied through a LUT.  Reads clamp to the image edges exactly as the DSL
version's ``repeat_edge`` wrapper does, so outputs match over the full frame.
"""

from __future__ import annotations

import numpy as np

__all__ = ["camera_pipe_ref"]


def _clamped_read(image: np.ndarray, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
    width, height = image.shape
    return image[np.clip(ix, 0, width - 1), np.clip(iy, 0, height - 1)]


def camera_pipe_ref(raw: np.ndarray, out_width: int, out_height: int,
                    color_temp: float = 3700.0, gamma: float = 2.2,
                    contrast: float = 50.0) -> np.ndarray:
    """Expert-baseline raw pipeline; returns an (out_width, out_height, 3) float32 image."""
    raw = np.asarray(raw, dtype=np.uint16)

    # Hot-pixel suppression over the full-resolution raw, with clamped reads.
    width, height = raw.shape
    xs = np.arange(width)[:, None]
    ys = np.arange(height)[None, :]
    neighbor_max = np.maximum(
        np.maximum(_clamped_read(raw, xs - 2, ys), _clamped_read(raw, xs + 2, ys)),
        np.maximum(_clamped_read(raw, xs, ys - 2), _clamped_read(raw, xs, ys + 2)),
    ).astype(np.int32)
    denoised_full = np.clip(raw.astype(np.int32), 0, neighbor_max)

    def denoised(ix, iy):
        return denoised_full[np.clip(ix, 0, width - 1), np.clip(iy, 0, height - 1)]

    # The half-resolution Bayer planes, over a region large enough for the output.
    half_w = out_width // 2 + 3
    half_h = out_height // 2 + 3
    hx = np.arange(-1, half_w)[:, None]
    hy = np.arange(-1, half_h)[None, :]

    g_gr = denoised(2 * hx, 2 * hy)
    r_r = denoised(2 * hx + 1, 2 * hy)
    b_b = denoised(2 * hx, 2 * hy + 1)
    g_gb = denoised(2 * hx + 1, 2 * hy + 1)

    def plane_at(plane, ix, iy):
        # ix, iy are half-resolution coordinates; the arrays start at -1.
        return plane[ix + 1, iy + 1]

    cx = np.arange(0, half_w - 1)[:, None]
    cy = np.arange(0, half_h - 1)[None, :]

    g_at_r = (plane_at(g_gr, cx, cy) + plane_at(g_gr, cx + 1, cy)
              + plane_at(g_gb, cx, cy) + plane_at(g_gb, cx, cy - 1)) // 4
    g_at_b = (plane_at(g_gb, cx, cy) + plane_at(g_gb, cx - 1, cy)
              + plane_at(g_gr, cx, cy) + plane_at(g_gr, cx, cy + 1)) // 4
    r_at_gr = (plane_at(r_r, cx - 1, cy) + plane_at(r_r, cx, cy)) // 2
    b_at_gr = (plane_at(b_b, cx, cy - 1) + plane_at(b_b, cx, cy)) // 2
    r_at_gb = (plane_at(r_r, cx, cy) + plane_at(r_r, cx, cy + 1)) // 2
    b_at_gb = (plane_at(b_b, cx, cy) + plane_at(b_b, cx + 1, cy)) // 2
    r_at_b = (plane_at(r_r, cx - 1, cy) + plane_at(r_r, cx, cy)
              + plane_at(r_r, cx - 1, cy + 1) + plane_at(r_r, cx, cy + 1)) // 4
    b_at_r = (plane_at(b_b, cx, cy - 1) + plane_at(b_b, cx, cy)
              + plane_at(b_b, cx + 1, cy - 1) + plane_at(b_b, cx + 1, cy)) // 4

    g_gr_c = plane_at(g_gr, cx, cy)
    g_gb_c = plane_at(g_gb, cx, cy)
    r_r_c = plane_at(r_r, cx, cy)
    b_b_c = plane_at(b_b, cx, cy)

    # Reassemble the full-resolution planes.
    fx = np.arange(out_width)[:, None]
    fy = np.arange(out_height)[None, :]
    half_x = fx // 2
    half_y = fy // 2
    is_red_col = (fx % 2) == 1
    is_blue_row = (fy % 2) == 1

    def gather(plane):
        return plane[half_x, half_y]

    demosaic_g = np.where(
        is_red_col & ~is_blue_row, gather(g_at_r),
        np.where(~is_red_col & is_blue_row, gather(g_at_b),
                 np.where(~is_red_col & ~is_blue_row, gather(g_gr_c), gather(g_gb_c))),
    )
    demosaic_r = np.where(
        is_red_col & ~is_blue_row, gather(r_r_c),
        np.where(~is_red_col & ~is_blue_row, gather(r_at_gr),
                 np.where(is_red_col & is_blue_row, gather(r_at_gb), gather(r_at_b))),
    )
    demosaic_b = np.where(
        ~is_red_col & is_blue_row, gather(b_b_c),
        np.where(~is_red_col & ~is_blue_row, gather(b_at_gr),
                 np.where(is_red_col & is_blue_row, gather(b_at_gb), gather(b_at_r))),
    )

    # Color correction.
    alpha = (color_temp - 3200.0) / (7000.0 - 3200.0)

    def blend(a, b):
        return np.float32(a * alpha + b * (1.0 - alpha))

    matrix = np.array([
        [blend(1.6697, 2.2997), blend(-0.2693, -0.4478), blend(-0.4004, 0.1706), blend(-42.4346, -39.0923)],
        [blend(-0.3576, -0.3826), blend(1.0615, 1.5906), blend(1.5949, -0.2080), blend(-37.1158, -25.4311)],
        [blend(-0.2175, -0.0888), blend(-1.8751, -0.7344), blend(6.9640, 2.2832), blend(-26.6970, -20.0826)],
    ], dtype=np.float32)

    rgb = np.stack([demosaic_r, demosaic_g, demosaic_b]).astype(np.float32)
    corrected = np.einsum("cd,dxy->cxy", matrix[:, :3], rgb) + matrix[:, 3][:, None, None]

    # Gamma / contrast curve through a LUT.
    lut_size = 1024
    value = np.arange(lut_size, dtype=np.float32) / np.float32(lut_size - 1)
    gamma_curve = np.power(value, np.float32(1.0 / gamma))
    s_curve = gamma_curve * np.float32(1.0 + contrast / 100.0) - np.float32(contrast / 200.0)
    lut = np.clip(s_curve * np.float32(255.0), 0.0, 255.0).astype(np.float32)

    scaled = np.clip(corrected * np.float32((lut_size - 1) / 1023.0), 0.0,
                     np.float32(lut_size - 1))
    processed = lut[scaled.astype(np.int32)]
    # (c, x, y) -> (x, y, c)
    return np.transpose(processed, (1, 2, 0)).astype(np.float32)
