"""Reference two-stage 3x3 box blur (matches repro.apps.blur exactly)."""

from __future__ import annotations

import numpy as np

__all__ = ["blur_ref"]


def blur_ref(image: np.ndarray) -> np.ndarray:
    """The expert-baseline blur: horizontal then vertical 3-tap box, edge-clamped.

    ``image`` has shape (width, height); the result matches the DSL pipeline
    bit-for-bit because both use float32 accumulation and clamp-to-edge reads
    of the *input* only.
    """
    image = np.asarray(image, dtype=np.float32)
    padded = np.pad(image, ((1, 1), (1, 1)), mode="edge")
    # blur_x(x, y) for x in [0, W), y in [-1, H+1): average over x-1, x, x+1.
    blur_x = (padded[:-2, :] + padded[1:-1, :] + padded[2:, :]) / np.float32(3.0)
    # blur_y(x, y): average over y-1, y, y+1 of blur_x.
    blur_y = (blur_x[:, :-2] + blur_x[:, 1:-1] + blur_x[:, 2:]) / np.float32(3.0)
    return blur_y
