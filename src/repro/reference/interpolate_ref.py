"""Reference multi-scale interpolation (matches repro.apps.interpolate).

Each pyramid level is computed over a padded domain large enough to feed the
level below, mirroring the compiler's bounds inference, so the comparison with
the DSL pipeline holds over the whole output except for a small border whose
width is documented by :func:`interpolate_margin`.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["interpolate_ref", "interpolate_margin"]


def interpolate_margin(levels: int = 4) -> int:
    """The output border (in pixels) that may differ from the DSL pipeline.

    The reference clamps each pyramid level at its own edge instead of chasing
    the exact required region of the infinite-domain formulation.
    """
    return 2 ** levels


def _clamped(plane: np.ndarray, ix, iy):
    return plane[np.clip(ix, 0, plane.shape[0] - 1), np.clip(iy, 0, plane.shape[1] - 1), :]


def interpolate_ref(image: np.ndarray, levels: int = 4) -> np.ndarray:
    """Expert-baseline multi-scale interpolation over an RGBA float32 image."""
    image = np.asarray(image, dtype=np.float32)
    width, height, channels = image.shape
    if channels != 4:
        raise ValueError("interpolate expects an RGBA image")

    clamped = image
    downsampled: List[np.ndarray] = [clamped * clamped[:, :, 3:4]]

    for _level in range(1, levels):
        prev = downsampled[-1]
        w = (prev.shape[0] + 1) // 2
        h = (prev.shape[1] + 1) // 2
        xs = np.arange(w)[:, None]
        ys = np.arange(h)[None, :]
        down = 0.25 * (
            _clamped(prev, 2 * xs, 2 * ys) + _clamped(prev, 2 * xs + 1, 2 * ys)
            + _clamped(prev, 2 * xs, 2 * ys + 1) + _clamped(prev, 2 * xs + 1, 2 * ys + 1)
        )
        downsampled.append(down.astype(np.float32))

    interpolated: List[np.ndarray] = [None] * levels
    interpolated[levels - 1] = downsampled[levels - 1]
    for level in range(levels - 2, -1, -1):
        coarser = interpolated[level + 1]
        fine = downsampled[level]
        xs = np.arange(fine.shape[0])[:, None]
        ys = np.arange(fine.shape[1])[None, :]
        up = 0.5 * (
            _clamped(coarser, xs // 2, ys // 2) + _clamped(coarser, (xs + 1) // 2, (ys + 1) // 2)
        )
        alpha = fine[:, :, 3:4]
        interpolated[level] = fine + (1.0 - alpha) * up

    weight = interpolated[0][:, :, 3]
    weight = np.where(weight == 0.0, 1.0, weight)
    normalized = interpolated[0][:, :, :3] / weight[:, :, None]
    return normalized.astype(np.float32)
