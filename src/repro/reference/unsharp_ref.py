"""Reference unsharp mask (matches repro.apps.unsharp)."""

from __future__ import annotations

import numpy as np

__all__ = ["unsharp_ref"]

_KERNEL = np.array([0.0625, 0.25, 0.375, 0.25, 0.0625], dtype=np.float32)


def unsharp_ref(image: np.ndarray, strength: float = 1.5) -> np.ndarray:
    """Expert-baseline unsharp masking: separable 5-tap blur and a point-wise combine."""
    image = np.asarray(image, dtype=np.float32)
    padded = np.pad(image, ((2, 2), (2, 2)), mode="edge")

    width, height = image.shape
    blur_x_core = np.zeros((width, height + 4), dtype=np.float32)
    for tap, weight in enumerate(_KERNEL):
        shift = tap - 2
        blur_x_core += np.float32(weight) * padded[2 + shift:2 + shift + width, :]

    blur_y = np.zeros((width, height), dtype=np.float32)
    for tap, weight in enumerate(_KERNEL):
        shift = tap - 2
        blur_y += np.float32(weight) * blur_x_core[:, 2 + shift:2 + shift + height]

    return image + np.float32(strength) * (image - blur_y)
