"""Reference histogram equalization (matches repro.apps.histogram_equalize)."""

from __future__ import annotations

import numpy as np

__all__ = ["histogram_equalize_ref"]


def histogram_equalize_ref(image: np.ndarray, bins: int = 256) -> np.ndarray:
    """Expert-baseline histogram equalization over a uint8 image of shape (width, height)."""
    image = np.asarray(image, dtype=np.uint8)
    histogram = np.bincount(image.ravel(), minlength=bins).astype(np.int64)
    cdf = np.cumsum(histogram)
    pixels = np.float32(image.size)
    remapped = cdf[image.astype(np.int64)].astype(np.float32) * (np.float32(255.0) / pixels)
    return remapped.astype(np.float32)
