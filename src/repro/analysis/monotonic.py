"""Monotonicity analysis of expressions with respect to a variable.

The sliding-window optimization and storage folding (Section 4.3) both need to
know whether the required region of a producer marches monotonically as an
intervening serial loop advances.  This module provides a conservative
syntactic analysis sufficient for the affine index expressions that dominate
image processing pipelines.
"""

from __future__ import annotations

import enum

from repro.ir import expr as E
from repro.ir import op

__all__ = ["Monotonic", "is_monotonic"]


class Monotonic(enum.Enum):
    CONSTANT = "constant"
    INCREASING = "increasing"
    DECREASING = "decreasing"
    UNKNOWN = "unknown"


def _unify(a: Monotonic, b: Monotonic) -> Monotonic:
    if a == Monotonic.CONSTANT:
        return b
    if b == Monotonic.CONSTANT:
        return a
    if a == b:
        return a
    return Monotonic.UNKNOWN


def _negate(m: Monotonic) -> Monotonic:
    if m == Monotonic.INCREASING:
        return Monotonic.DECREASING
    if m == Monotonic.DECREASING:
        return Monotonic.INCREASING
    return m


def is_monotonic(e: E.Expr, var: str) -> Monotonic:
    """How ``e`` varies as the variable ``var`` increases."""
    if isinstance(e, (E.IntImm, E.FloatImm)):
        return Monotonic.CONSTANT
    if isinstance(e, E.Variable):
        return Monotonic.INCREASING if e.name == var else Monotonic.CONSTANT
    if isinstance(e, E.Cast):
        return is_monotonic(e.value, var)
    if isinstance(e, E.Add):
        return _unify(is_monotonic(e.a, var), is_monotonic(e.b, var))
    if isinstance(e, E.Sub):
        return _unify(is_monotonic(e.a, var), _negate(is_monotonic(e.b, var)))
    if isinstance(e, E.Mul):
        ka = op.const_value(e.a)
        kb = op.const_value(e.b)
        if kb is not None:
            m = is_monotonic(e.a, var)
            return m if kb >= 0 else _negate(m)
        if ka is not None:
            m = is_monotonic(e.b, var)
            return m if ka >= 0 else _negate(m)
        ma, mb = is_monotonic(e.a, var), is_monotonic(e.b, var)
        if ma == Monotonic.CONSTANT and mb == Monotonic.CONSTANT:
            return Monotonic.CONSTANT
        return Monotonic.UNKNOWN
    if isinstance(e, E.Div):
        kb = op.const_value(e.b)
        if kb is not None and kb != 0:
            m = is_monotonic(e.a, var)
            return m if kb > 0 else _negate(m)
        if is_monotonic(e.a, var) == Monotonic.CONSTANT and is_monotonic(e.b, var) == Monotonic.CONSTANT:
            return Monotonic.CONSTANT
        return Monotonic.UNKNOWN
    if isinstance(e, (E.Min, E.Max)):
        return _unify(is_monotonic(e.a, var), is_monotonic(e.b, var))
    if isinstance(e, E.Select):
        if is_monotonic(e.condition, var) != Monotonic.CONSTANT:
            return Monotonic.UNKNOWN
        return _unify(is_monotonic(e.true_value, var), is_monotonic(e.false_value, var))
    if isinstance(e, E.Let):
        # Conservative: only handle lets whose value does not involve var.
        if is_monotonic(e.value, var) == Monotonic.CONSTANT:
            return is_monotonic(e.body, var)
        return Monotonic.UNKNOWN
    if isinstance(e, E.Call) and e.name == "likely":
        return is_monotonic(e.args[0], var)
    # Anything else (loads, data-dependent calls, mod): check whether var occurs at all.
    from repro.ir.visitor import IRVisitor

    class _Uses(IRVisitor):
        def __init__(self):
            self.found = False

        def visit_Variable(self, node):
            if node.name == var:
                self.found = True

    uses = _Uses()
    uses.visit(e)
    return Monotonic.CONSTANT if not uses.found else Monotonic.UNKNOWN
