"""Program analyses: interval arithmetic, required-region (box) computation,
call-graph construction, and monotonicity checks.

The paper (Section 4.2) deliberately chooses *interval analysis* over the
polyhedral model: every region is an axis-aligned box whose bounds are
symbolic expressions, which is less expressive but can analyze through any
expression the language can build.
"""

from repro.analysis.interval import Interval, bounds_of_expr_in_scope
from repro.analysis.bounds import Box, box_touched, box_union
from repro.analysis.call_graph import build_environment, realization_order
from repro.analysis.scope import Scope
from repro.analysis.static_cost import (
    StaticAnalysisError,
    StaticCostAnalyzer,
    analyze_lowered,
    estimate_cost_static,
)

__all__ = [
    "Interval",
    "bounds_of_expr_in_scope",
    "Box",
    "box_touched",
    "box_union",
    "build_environment",
    "realization_order",
    "Scope",
    "StaticAnalysisError",
    "StaticCostAnalyzer",
    "analyze_lowered",
    "estimate_cost_static",
]
