"""Linear-combination normalization of index expressions.

Several passes need to answer questions like "is ``a - b`` a compile-time
constant?" (storage folding needs the footprint extent, the vectorizer wants
to recognize dense loads).  Index expressions are overwhelmingly affine, so a
tiny linear normal form — a mapping from variable name to integer coefficient
plus a constant term — answers these questions without a full simplifier.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir import expr as E
from repro.ir import op

__all__ = ["LinearExpr", "to_linear", "constant_difference", "coefficient_of"]


class LinearExpr:
    """``sum(coefficients[v] * v) + constant`` with integer coefficients."""

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: Optional[Dict[str, float]] = None, constant: float = 0):
        self.coefficients = dict(coefficients or {})
        self.constant = constant

    def __add__(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = dict(self.coefficients)
        for name, c in other.coefficients.items():
            coeffs[name] = coeffs.get(name, 0) + c
        return LinearExpr(coeffs, self.constant + other.constant)

    def __sub__(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = dict(self.coefficients)
        for name, c in other.coefficients.items():
            coeffs[name] = coeffs.get(name, 0) - c
        return LinearExpr(coeffs, self.constant - other.constant)

    def scaled(self, k: float) -> "LinearExpr":
        return LinearExpr({n: c * k for n, c in self.coefficients.items()}, self.constant * k)

    def is_constant(self) -> bool:
        return all(c == 0 for c in self.coefficients.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = [f"{c}*{n}" for n, c in self.coefficients.items() if c != 0]
        terms.append(str(self.constant))
        return " + ".join(terms)


def to_linear(e: E.Expr) -> Optional[LinearExpr]:
    """The linear normal form of ``e``, or None if it is not affine."""
    if isinstance(e, E.IntImm):
        return LinearExpr(constant=e.value)
    if isinstance(e, E.FloatImm):
        return LinearExpr(constant=e.value)
    if isinstance(e, E.Variable):
        return LinearExpr({e.name: 1})
    if isinstance(e, E.Cast):
        return to_linear(e.value)
    if isinstance(e, E.Add):
        a, b = to_linear(e.a), to_linear(e.b)
        return None if a is None or b is None else a + b
    if isinstance(e, E.Sub):
        a, b = to_linear(e.a), to_linear(e.b)
        return None if a is None or b is None else a - b
    if isinstance(e, E.Mul):
        ka = op.const_value(e.a)
        kb = op.const_value(e.b)
        if kb is not None:
            a = to_linear(e.a)
            return None if a is None else a.scaled(kb)
        if ka is not None:
            b = to_linear(e.b)
            return None if b is None else b.scaled(ka)
        return None
    if isinstance(e, E.Broadcast):
        return to_linear(e.value)
    if isinstance(e, E.Call) and e.name == "likely":
        return to_linear(e.args[0])
    return None


def constant_difference(a: E.Expr, b: E.Expr) -> Optional[float]:
    """``a - b`` if it is a compile-time constant, else None."""
    la, lb = to_linear(a), to_linear(b)
    if la is None or lb is None:
        return None
    diff = la - lb
    if diff.is_constant():
        return diff.constant
    return None


def coefficient_of(e: E.Expr, var: str) -> Optional[float]:
    """The coefficient of ``var`` in the affine expression ``e`` (None if not affine)."""
    linear = to_linear(e)
    if linear is None:
        return None
    return linear.coefficients.get(var, 0)
