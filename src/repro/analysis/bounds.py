"""Required-region ("box") computation over statements and expressions.

Bounds inference (Section 4.2) needs to know, for each function, the
axis-aligned bounding box of the coordinates at which it is accessed within a
region of the program.  :func:`box_touched` walks a statement or expression,
binding loop variables and let bindings to intervals as it descends, and
unions the interval bounds of every call-site argument list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.interval import Interval, bounds_of_expr_in_scope, interval_union
from repro.analysis.scope import Scope
from repro.ir import expr as E
from repro.ir import stmt as S

__all__ = ["Box", "box_touched", "box_union", "boxes_touched"]


class Box:
    """A multi-dimensional axis-aligned region: one :class:`Interval` per dimension."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Sequence[Interval]):
        self.intervals = list(intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __getitem__(self, i: int) -> Interval:
        return self.intervals[i]

    def __iter__(self):
        return iter(self.intervals)

    def is_empty(self) -> bool:
        return len(self.intervals) == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Box({self.intervals!r})"


def box_union(a: Optional[Box], b: Optional[Box]) -> Optional[Box]:
    """Union two boxes dimension-wise (either may be None, meaning empty)."""
    if a is None:
        return b
    if b is None:
        return a
    if len(a) != len(b):
        raise ValueError(f"cannot union boxes of different dimensionality: {len(a)} vs {len(b)}")
    return Box([interval_union(x, y) for x, y in zip(a.intervals, b.intervals)])


def box_touched(
    node,
    func_name: str,
    scope: Optional[Scope] = None,
    consider_calls: bool = True,
    consider_provides: bool = False,
) -> Optional[Box]:
    """The box of coordinates of ``func_name`` touched anywhere inside ``node``.

    Returns ``None`` if the function is not accessed at all.  Loop variables
    and let bindings encountered while descending are bound to intervals, so
    the resulting bounds are expressions only of variables defined *outside*
    ``node`` (which is exactly what the caller wants to inject as a preamble).
    """
    collector = _BoxCollector({func_name}, scope or Scope(), consider_calls, consider_provides)
    collector.walk(node)
    return collector.boxes.get(func_name)


def boxes_touched(
    node,
    func_names: Sequence[str],
    scope: Optional[Scope] = None,
    consider_calls: bool = True,
    consider_provides: bool = False,
) -> Dict[str, Box]:
    """Compute touched boxes for several functions in a single walk."""
    collector = _BoxCollector(set(func_names), scope or Scope(), consider_calls, consider_provides)
    collector.walk(node)
    return collector.boxes


class _BoxCollector:
    def __init__(self, names, scope: Scope, consider_calls: bool, consider_provides: bool):
        self.names = names
        self.scope = scope
        self.consider_calls = consider_calls
        self.consider_provides = consider_provides
        self.boxes: Dict[str, Box] = {}

    def _record(self, name: str, args: Sequence[E.Expr]) -> None:
        intervals = [bounds_of_expr_in_scope(a, self.scope) for a in args]
        box = Box(intervals)
        existing = self.boxes.get(name)
        self.boxes[name] = box if existing is None else box_union(existing, box)

    def walk(self, node) -> None:
        if node is None:
            return

        # -- expressions --------------------------------------------------
        if isinstance(node, E.Call):
            if (
                self.consider_calls
                and node.call_type in (E.CallType.HALIDE, E.CallType.IMAGE)
                and node.name in self.names
            ):
                self._record(node.name, node.args)
            for a in node.args:
                self.walk(a)
            return
        if isinstance(node, E.Let):
            self.walk(node.value)
            bounds = bounds_of_expr_in_scope(node.value, self.scope)
            with self.scope.bound(node.name, bounds):
                self.walk(node.body)
            return
        if isinstance(node, E.Expr):
            from repro.ir.visitor import children_of

            for child in children_of(node):
                self.walk(child)
            return

        # -- statements ---------------------------------------------------
        if isinstance(node, S.For):
            self.walk(node.min)
            self.walk(node.extent)
            lo = bounds_of_expr_in_scope(node.min, self.scope)
            hi = bounds_of_expr_in_scope(node.extent, self.scope)
            if lo.min is not None and hi.max is not None:
                loop_interval = Interval(lo.min, lo.max + hi.max - 1 if lo.max is not None else None)
            else:
                loop_interval = Interval.everything()
            with self.scope.bound(node.name, loop_interval):
                self.walk(node.body)
            return
        if isinstance(node, S.LetStmt):
            self.walk(node.value)
            bounds = bounds_of_expr_in_scope(node.value, self.scope)
            with self.scope.bound(node.name, bounds):
                self.walk(node.body)
            return
        if isinstance(node, S.Provide):
            if self.consider_provides and node.name in self.names:
                self._record(node.name, node.args)
            for a in node.args:
                self.walk(a)
            self.walk(node.value)
            return
        if isinstance(node, S.Stmt):
            from repro.ir.visitor import children_of

            for child in children_of(node):
                self.walk(child)
            return
        raise TypeError(f"unexpected node {type(node).__name__}")
