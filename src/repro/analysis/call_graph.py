"""Call-graph construction over pipeline functions.

A Halide pipeline is a DAG of functions.  Lowering needs (a) the environment
of every function reachable from the output and (b) a *realization order*: a
topological order in which producers appear before their consumers, so that
injection of realizations (Section 4.1) can proceed from the output backwards.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.ir import expr as E
from repro.ir.visitor import IRVisitor

__all__ = ["find_direct_calls", "build_environment", "realization_order", "CallGraphError"]


class CallGraphError(RuntimeError):
    """Raised for malformed pipelines (cycles through pure definitions, etc.)."""


class _CallCollector(IRVisitor):
    def __init__(self):
        self.calls: Dict[str, object] = {}

    def visit_Call(self, node: E.Call):
        if node.call_type == E.CallType.HALIDE and getattr(node, "target", None) is not None:
            existing = self.calls.get(node.name)
            if existing is not None and existing is not node.target:
                raise CallGraphError(
                    f"two different functions share the name {node.name!r}"
                )
            self.calls[node.name] = node.target
        for a in node.args:
            self.visit(a)


def find_direct_calls(function) -> Dict[str, object]:
    """Map of function-name -> Function for every stage directly called by ``function``."""
    collector = _CallCollector()
    for expr in function.all_values():
        collector.visit(expr)
    # A function's update definitions may call itself; that is not an edge in
    # the DAG we schedule over.
    collector.calls.pop(function.name, None)
    return collector.calls


def build_environment(outputs) -> Dict[str, object]:
    """All functions reachable from ``outputs``, keyed by name."""
    env: Dict[str, object] = {}
    pending = list(outputs)
    while pending:
        f = pending.pop()
        if f.name in env:
            if env[f.name] is not f:
                raise CallGraphError(f"two different functions share the name {f.name!r}")
            continue
        env[f.name] = f
        pending.extend(find_direct_calls(f).values())
    return env


def realization_order(outputs, env: Dict[str, object]) -> List[str]:
    """Topological order of ``env``: every producer before its consumers.

    The output functions come last.  Raises :class:`CallGraphError` on cycles.
    """
    graph: Dict[str, Set[str]] = {
        name: set(find_direct_calls(f)) & set(env) for name, f in env.items()
    }

    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

    def visit(name: str) -> None:
        mark = state.get(name, 0)
        if mark == 2:
            return
        if mark == 1:
            raise CallGraphError(f"cycle in pipeline call graph involving {name!r}")
        state[name] = 1
        for callee in sorted(graph[name]):
            visit(callee)
        state[name] = 2
        order.append(name)

    for f in outputs:
        visit(f.name)
    for name in sorted(env):
        visit(name)
    return order
