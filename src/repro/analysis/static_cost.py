"""Static cost analysis of lowered pipelines (no execution).

The dynamic :class:`~repro.machine.cost_model.CostModel` listens to the
interpreter's per-operation event stream — exact, but it costs a full
interpreted execution per estimate, which makes it the slowest part of the
autotuner by orders of magnitude.  This pass computes the same
:class:`~repro.machine.cost_model.CostReport` by *walking the lowered
Stmt/Expr tree*:

* **Operation counts are exact.**  The walker mirrors the interpreter's event
  semantics precisely — which nodes emit an arithmetic event (binary
  arithmetic, comparisons, intrinsic calls; not casts, selects, boolean ops,
  ramps or broadcasts), how vector lanes are derived, that a ``For`` evaluates
  its min/extent once per *entry*, that only the taken branch of an
  ``IfThenElse`` executes — and multiplies per-iteration counts by loop
  extents instead of iterating.  When a count genuinely depends on a loop
  variable (sliding-window extents, ``GUARD_WITH_IF`` tails), the enclosing
  loop is re-walked per concrete iteration, so the totals stay exact; the
  interior of constant-extent nests is still summarized analytically.
* **Memory traffic is summarized per access site.**  Every load/store site
  records its execution count, vector shape, and the affine form of its index
  (via :mod:`repro.analysis.linear`).  Closing loops turn these into
  per-buffer stride/footprint summaries: how far the site advances per
  iteration, the total span it touches, and — for loops that *re*-touch the
  same region — the working set between reuses.  The report phase classifies
  the resulting line traffic against the profile's cache geometry (the same
  L1/L2 sizes and line length the :class:`~repro.machine.cache.CacheSimulator`
  uses) into spatial L1 hits, temporal hits at the level whose capacity holds
  the reuse working set, and compulsory memory misses.
* **Parallel structure is charged identically** to the dynamic model: work
  inside ``ForType.PARALLEL``/GPU loops is divided by
  ``min(product of open parallel extents, cores)`` and each parallel-loop
  entry pays the profile's dispatch overhead.

``ops``/``loads``/``stores`` match the dynamic model exactly (property-tested
across fuzz-generated pipelines); cycle totals are analytic estimates whose
*ordering* of schedules matches the trace-driven simulation — which is what
the autotuner needs from a fitness function.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.linear import to_linear
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir import op
from repro.ir.visitor import children_of

__all__ = [
    "StaticAnalysisError",
    "StaticCostAnalyzer",
    "analyze_lowered",
    "estimate_cost_static",
]


class StaticAnalysisError(RuntimeError):
    """Raised when the lowered tree cannot be analyzed statically."""


class _Needs(Exception):
    """Internal: a control-flow value depends on enclosing loop variables."""

    def __init__(self, names):
        super().__init__(", ".join(sorted(names)))
        self.names = frozenset(names)


_PARALLEL_TYPES = (S.ForType.PARALLEL, S.ForType.GPU_BLOCK, S.ForType.GPU_THREAD)


class _Site:
    """One load/store site: execution count + stride/footprint summary."""

    __slots__ = ("kind", "buffer", "element_bytes", "lanes", "execs", "factor",
                 "ramp_stride", "coeffs", "span_elems", "inner_advance",
                 "reuse_ws")

    def __init__(self, kind, buffer, element_bytes, lanes, execs, factor,
                 ramp_stride, coeffs, span_elems):
        self.kind = kind
        self.buffer = buffer
        self.element_bytes = element_bytes
        self.lanes = lanes
        self.execs = execs
        self.factor = factor
        #: Constant lane stride of a Ramp index (0 for broadcast/scalar,
        #: None when the index is not an affine vector).
        self.ramp_stride = ramp_stride
        #: Affine coefficients of the index over still-open loop variables
        #: (None when the index is not affine).
        self.coeffs = coeffs
        #: Elements spanned by the site across all closed loops (grows as
        #: enclosing loops close).
        self.span_elems = span_elems
        #: Element advance per iteration of the innermost loop the index
        #: varies with (None until such a loop closes).
        self.inner_advance = None
        #: Bytes touched between temporal reuses of this site's lines, set
        #: when a loop whose variable the index does *not* use closes.
        self.reuse_ws = None


class StaticCostAnalyzer:
    """Walks a lowered statement and accumulates cost-model quantities.

    ``env`` maps free variable names (output bounds, scalar params) to
    numbers.  ``exact`` stays True as long as every control-flow value
    (loop extents, branch conditions, allocation sizes) was resolvable;
    when it goes False the counts are best-effort estimates.
    """

    def __init__(self, profile, env: Optional[Dict[str, object]] = None):
        self.profile = profile
        self.env: Dict[str, object] = dict(env or {})
        self.exact = True

        self.ops = 0
        self.loads = 0
        self.stores = 0
        self.arith_cycles = 0.0
        self.parallel_overhead = 0.0
        self.sites: List[_Site] = []

        #: Buffer capacity in elements / element size in bytes (from
        #: Allocate nodes and image layouts).
        self.buffer_elems: Dict[str, int] = {}
        self.buffer_eb: Dict[str, int] = {}
        self.current_alloc_bytes = 0
        self.peak_alloc_bytes = 0

        self._lanes_env: Dict[str, int] = {}
        #: Let-bound names whose value is affine in open loop variables.
        self._linear_env: Dict[str, Tuple[Dict[str, float], float]] = {}
        #: Let-bound names whose value is unknown -> the root unknowns.
        self._unknown_roots: Dict[str, frozenset] = {}
        self._active_loops: Set[str] = set()
        self._parallel_stack: List[int] = []
        self._factor = 1.0

        self._stmt_table = {
            "Block": self._stmt_Block,
            "LetStmt": self._stmt_LetStmt,
            "ProducerConsumer": self._stmt_ProducerConsumer,
            "For": self._stmt_For,
            "Allocate": self._stmt_Allocate,
            "Store": self._stmt_Store,
            "IfThenElse": self._stmt_IfThenElse,
            "AssertStmt": self._stmt_AssertStmt,
            "Evaluate": self._stmt_Evaluate,
        }

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self, stmt: S.Stmt) -> None:
        self._stmt(stmt, 1)

    def report(self):
        from repro.machine.cache import CacheStats
        from repro.machine.cost_model import CostReport

        profile = self.profile
        line = profile.cache_line_bytes
        latency = {1: profile.l1_latency, 2: profile.l2_latency,
                   3: profile.memory_latency}
        stats = CacheStats()
        memory_cycles = 0.0
        for site in self.sites:
            eb = max(1, site.element_bytes)
            elems_per_line = max(1, line // eb)
            capacity = self.buffer_elems.get(site.buffer)

            # Cache accesses per execution: the dynamic model touches each
            # distinct line of a vector access once, every scalar access once.
            if site.lanes <= 1:
                per_exec_lines = 1
            elif site.ramp_stride is None:
                per_exec_lines = site.lanes
            else:
                per_exec_lines = min(site.lanes, max(1, math.ceil(
                    site.lanes * abs(site.ramp_stride) / elems_per_line)))
            accesses = site.execs * per_exec_lines
            if accesses <= 0:
                continue

            span = site.span_elems
            if capacity is not None:
                span = min(span, capacity)
            span_bytes = max(1, int(span)) * eb
            distinct = max(1, min(accesses, math.ceil(span_bytes / line)))

            # New-line events: accesses that leave the just-touched line.
            if site.coeffs is None:
                new_lines = accesses
            elif site.inner_advance is None:
                new_lines = distinct
            else:
                rate = min(float(per_exec_lines),
                           abs(site.inner_advance) / elems_per_line)
                new_lines = int(site.execs * rate)
            new_lines = max(distinct, min(accesses, new_lines))

            spatial = accesses - new_lines          # same-line repeats -> L1
            compulsory = distinct                   # cold misses -> memory
            temporal = new_lines - distinct         # line revisits
            ws = site.reuse_ws if site.reuse_ws is not None else span_bytes
            if ws <= profile.l1_size:
                level = 1
            elif ws <= profile.l2_size:
                level = 2
            else:
                level = 3

            t1 = temporal if level == 1 else 0
            t2 = temporal if level == 2 else 0
            t3 = temporal if level == 3 else 0
            stats.l1_hits += spatial + t1
            stats.l1_misses += t2 + t3 + compulsory
            stats.l2_hits += t2
            stats.l2_misses += t3 + compulsory
            cost = ((spatial + t1) * latency[1] + t2 * latency[2] +
                    (t3 + compulsory) * latency[3])
            memory_cycles += cost * (1.0 - profile.latency_hiding) / site.factor

        cycles = self.arith_cycles + memory_cycles + self.parallel_overhead
        return CostReport(
            profile_name=profile.name,
            cycles=cycles,
            arithmetic_cycles=self.arith_cycles,
            memory_cycles=memory_cycles,
            parallel_overhead_cycles=self.parallel_overhead,
            cache=stats,
            milliseconds=cycles / (profile.frequency_ghz * 1e6),
            ops=int(self.ops),
            loads=int(self.loads),
            stores=int(self.stores),
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _snapshot(self):
        return (self.ops, self.loads, self.stores, self.arith_cycles,
                self.parallel_overhead, len(self.sites), self.exact,
                self.current_alloc_bytes, self.peak_alloc_bytes)

    def _restore(self, snap) -> None:
        (self.ops, self.loads, self.stores, self.arith_cycles,
         self.parallel_overhead, num_sites, self.exact,
         self.current_alloc_bytes, self.peak_alloc_bytes) = snap
        del self.sites[num_sites:]

    def _recompute_factor(self) -> None:
        available = 1
        for extent in self._parallel_stack:
            available *= max(extent, 1)
        self._factor = float(min(available, self.profile.cores)) or 1.0

    def _arith(self, times: int, lanes: int) -> None:
        self.ops += times * lanes
        issues = times * math.ceil(lanes / self.profile.vector_width)
        self.arith_cycles += issues * self.profile.issue_cost / self._factor

    def _roots(self, e: E.Expr) -> frozenset:
        """Root unknown variables an expression's value depends on."""
        names: Set[str] = set()
        self._collect_roots(e, names)
        return frozenset(names)

    def _collect_roots(self, e: E.Expr, out: Set[str]) -> None:
        if isinstance(e, E.Variable):
            if e.name in self.env:
                return
            roots = self._unknown_roots.get(e.name)
            if roots is not None:
                out.update(roots)
            elif e.name in self._linear_env:
                out.update(self._linear_env[e.name][0].keys())
            else:
                out.add(e.name)
            return
        if isinstance(e, E.Let):
            body_roots: Set[str] = set()
            self._collect_roots(e.body, body_roots)
            if e.name in body_roots:
                body_roots.discard(e.name)
                self._collect_roots(e.value, body_roots)
            out.update(body_roots)
            return
        for child in children_of(e):
            if isinstance(child, E.Expr):
                self._collect_roots(child, out)

    def _linearize(self, e: E.Expr) -> Optional[Tuple[Dict[str, float], float]]:
        """Affine form of ``e`` over *unresolved* variables.

        Numeric bindings fold into the constant; let-bound affine values are
        substituted, so the remaining coefficients are over open loop
        variables (or genuinely unknown names).
        """
        linear = to_linear(e)
        if linear is None:
            return None
        coeffs: Dict[str, float] = {}
        constant = float(linear.constant)
        for name, c in linear.coefficients.items():
            if not c:
                continue
            value = self.env.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                constant += c * value
                continue
            sub = self._linear_env.get(name)
            if sub is not None:
                sub_coeffs, sub_const = sub
                constant += c * sub_const
                for sub_name, sub_c in sub_coeffs.items():
                    coeffs[sub_name] = coeffs.get(sub_name, 0.0) + c * sub_c
                continue
            coeffs[name] = coeffs.get(name, 0.0) + c
        return coeffs, constant

    def _resolve_control(self, e: E.Expr, value, fallback):
        """A control-flow value: raise ``_Needs`` when an enclosing loop can
        supply it by iterating, otherwise fall back (marking the analysis
        inexact)."""
        if value is not None:
            return value
        roots = self._roots(e)
        if roots & self._active_loops:
            raise _Needs(roots)
        self.exact = False
        return fallback

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt: S.Stmt, times: int) -> None:
        if stmt is None or times <= 0:
            return
        handler = self._stmt_table.get(type(stmt).__name__)
        if handler is None:
            raise StaticAnalysisError(
                f"cannot analyze statement {type(stmt).__name__}; "
                "run the flattening pass first")
        handler(stmt, times)

    def _stmt_Block(self, stmt: S.Block, times: int) -> None:
        for s in stmt.stmts:
            self._stmt(s, times)

    def _stmt_ProducerConsumer(self, stmt: S.ProducerConsumer, times: int) -> None:
        self._stmt(stmt.body, times)

    def _stmt_Evaluate(self, stmt: S.Evaluate, times: int) -> None:
        self._expr(stmt.value, times)

    def _stmt_AssertStmt(self, stmt: S.AssertStmt, times: int) -> None:
        self._expr(stmt.condition, times)

    def _stmt_LetStmt(self, stmt: S.LetStmt, times: int) -> None:
        value, lanes = self._expr(stmt.value, times)
        self._with_binding(stmt.name, stmt.value, value, lanes,
                           lambda: self._stmt(stmt.body, times))

    def _with_binding(self, name, value_expr, value, lanes, thunk):
        saved_env = self.env.get(name, _MISSING)
        saved_lanes = self._lanes_env.get(name, _MISSING)
        saved_linear = self._linear_env.get(name, _MISSING)
        saved_roots = self._unknown_roots.get(name, _MISSING)
        self.env.pop(name, None)
        self._linear_env.pop(name, None)
        self._unknown_roots.pop(name, None)
        if value is not None:
            self.env[name] = value
        else:
            linear = self._linearize(value_expr)
            if linear is not None:
                self._linear_env[name] = linear
            else:
                self._unknown_roots[name] = self._roots(value_expr)
        if lanes > 1:
            self._lanes_env[name] = lanes
        try:
            return thunk()
        finally:
            _restore_key(self.env, name, saved_env)
            _restore_key(self._lanes_env, name, saved_lanes)
            _restore_key(self._linear_env, name, saved_linear)
            _restore_key(self._unknown_roots, name, saved_roots)

    def _stmt_IfThenElse(self, stmt: S.IfThenElse, times: int) -> None:
        value, _lanes = self._expr(stmt.condition, times)
        if value is None:
            # GUARD_WITH_IF conditions depend on loop variables: the
            # enclosing loop iterates concretely so the branch stays exact.
            value = self._resolve_control(stmt.condition, None, True)
        if bool(value):
            self._stmt(stmt.then_case, times)
        elif stmt.else_case is not None:
            self._stmt(stmt.else_case, times)

    def _stmt_Allocate(self, stmt: S.Allocate, times: int) -> None:
        size_value, _ = self._expr(stmt.size, times)
        size_value = self._resolve_control(stmt.size, size_value, 0)
        elems = max(int(size_value), 0)
        eb = stmt.type.to_numpy_dtype().itemsize
        self.buffer_elems[stmt.name] = max(self.buffer_elems.get(stmt.name, 0), elems)
        self.buffer_eb[stmt.name] = eb
        self.current_alloc_bytes += elems * eb
        self.peak_alloc_bytes = max(self.peak_alloc_bytes, self.current_alloc_bytes)
        try:
            self._stmt(stmt.body, times)
        finally:
            self.current_alloc_bytes -= elems * eb

    def _stmt_Store(self, stmt: S.Store, times: int) -> None:
        _iv, index_lanes = self._expr(stmt.index, times)
        _vv, value_lanes = self._expr(stmt.value, times)
        if index_lanes > 1:
            lanes = index_lanes
        elif value_lanes > 1:
            lanes = value_lanes
        else:
            lanes = 1
        self.stores += times * lanes
        self._record_site("store", stmt.name, stmt.index, index_lanes, times,
                          element_type=stmt.value.type)

    def _stmt_For(self, stmt: S.For, times: int) -> None:
        # Min and extent are evaluated once per loop *entry*.
        min_value, _ = self._expr(stmt.min, times)
        extent_value, _ = self._expr(stmt.extent, times)
        extent_value = self._resolve_control(stmt.extent, extent_value, 1)
        extent = int(extent_value)

        parallel = stmt.for_type in _PARALLEL_TYPES
        if parallel:
            self.parallel_overhead += (
                times * self.profile.parallel_task_overhead / self._factor)
            self._parallel_stack.append(max(extent, 1))
            self._recompute_factor()
        try:
            if extent > 0:
                self._walk_loop_body(stmt, times, min_value, extent)
        finally:
            if parallel:
                self._parallel_stack.pop()
                self._recompute_factor()

    def _walk_loop_body(self, stmt: S.For, times: int, min_value, extent: int) -> None:
        snap = self._snapshot()
        site_mark = len(self.sites)
        self._active_loops.add(stmt.name)
        try:
            self._stmt(stmt.body, times * extent)
        except _Needs as needs:
            self._active_loops.discard(stmt.name)
            if stmt.name not in needs.names:
                raise
            # Something in the body (an inner extent, a guard condition, an
            # allocation size) depends on this loop's variable: re-walk the
            # body once per concrete iteration.  Counts stay exact; it costs
            # one tree walk per iteration instead of one total.
            self._restore(snap)
            start = int(self._resolve_control(stmt.min, min_value, 0))
            saved = self.env.get(stmt.name, _MISSING)
            try:
                for i in range(start, start + extent):
                    self.env[stmt.name] = i
                    self._stmt(stmt.body, times)
            finally:
                _restore_key(self.env, stmt.name, saved)
        else:
            self._active_loops.discard(stmt.name)
            self._close_loop(stmt.name, extent, site_mark)

    def _close_loop(self, var: str, extent: int, site_mark: int) -> None:
        """Fold one analytic loop level into the enclosed sites' summaries."""
        closed = self.sites[site_mark:]
        if not closed:
            return
        # Bytes touched by one iteration of this loop, per buffer (overlapping
        # sites on the same buffer count once: the max span wins).
        per_buffer: Dict[str, float] = {}
        for site in closed:
            span_bytes = site.span_elems * site.element_bytes
            if span_bytes > per_buffer.get(site.buffer, 0.0):
                per_buffer[site.buffer] = span_bytes
        body_bytes = sum(per_buffer.values())
        for site in closed:
            if site.coeffs is None:
                capacity = self.buffer_elems.get(site.buffer)
                site.span_elems = min(site.span_elems * extent,
                                      capacity if capacity else site.span_elems * extent)
                continue
            coeff = site.coeffs.get(var, 0.0)
            if coeff:
                if site.inner_advance is None:
                    site.inner_advance = abs(coeff)
                site.span_elems = (extent - 1) * abs(coeff) + site.span_elems
            elif site.reuse_ws is None:
                site.reuse_ws = body_bytes

    # ------------------------------------------------------------------
    # access sites
    # ------------------------------------------------------------------
    def _record_site(self, kind: str, buffer: str, index: E.Expr,
                     index_lanes: int, times: int, element_type) -> None:
        eb = self.buffer_eb.get(buffer)
        if eb is None:
            eb = element_type.element_of().to_numpy_dtype().itemsize
        if isinstance(index, E.Ramp):
            lanes = index.lanes
            ramp_stride = op.const_value(index.stride)
            base = index.base
        elif isinstance(index, E.Broadcast):
            lanes = max(index.lanes, index_lanes)
            ramp_stride = 0
            base = index.value
        elif index_lanes > 1:
            # Non-affine vector index (gather/scatter).
            lanes = index_lanes
            ramp_stride = None
            base = None
        else:
            lanes = 1
            ramp_stride = 0
            base = index
        coeffs = None
        if base is not None and ramp_stride is not None:
            linear = self._linearize(base)
            if linear is not None:
                coeffs = {name: c for name, c in linear[0].items() if c}
        if ramp_stride is None or coeffs is None:
            span = float(lanes)
            coeffs = None
            ramp_stride = None if lanes > 1 else 0
        elif lanes > 1:
            span = (lanes - 1) * abs(float(ramp_stride)) + 1.0
        else:
            span = 1.0
        self.sites.append(_Site(kind, buffer, eb, lanes, times, self._factor,
                                ramp_stride, coeffs, span))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expr(self, e: E.Expr, times: int):
        """Count events for one evaluation of ``e`` (scaled by ``times``);
        returns ``(value, lanes)`` with ``value`` None when unknown."""
        method = _EXPR_TABLE.get(type(e).__name__)
        if method is None:
            raise StaticAnalysisError(f"cannot analyze expression {type(e).__name__}")
        return method(self, e, times)

    def _expr_IntImm(self, e, times):
        return e.value, 1

    def _expr_FloatImm(self, e, times):
        return e.value, 1

    def _expr_Variable(self, e, times):
        return self.env.get(e.name), self._lanes_env.get(e.name, 1)

    def _expr_Cast(self, e, times):
        value, lanes = self._expr(e.value, times)
        if value is not None:
            if e.type.is_float():
                value = float(value)
            elif e.type.is_bool():
                value = bool(value)
            else:
                value = int(value)
        return value, lanes

    def _binary_operands(self, e, times):
        va, la = self._expr(e.a, times)
        vb, lb = self._expr(e.b, times)
        lanes = max(la, lb)
        self._arith(times, lanes)
        return va, vb, lanes

    def _expr_Add(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va + vb), lanes

    def _expr_Sub(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va - vb), lanes

    def _expr_Mul(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va * vb), lanes

    def _expr_Div(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        if va is None or vb is None:
            return None, lanes
        if e.type.is_float():
            return (va / vb if vb else None), lanes
        if vb == 0:
            return 0, lanes
        return int(math.floor(va / vb)), lanes

    def _expr_Mod(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        if va is None or vb is None:
            return None, lanes
        if e.type.is_float():
            return (math.fmod(va, vb) if vb else None), lanes
        if vb == 0:
            return 0, lanes
        return va - vb * int(math.floor(va / vb)), lanes

    def _expr_Min(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else min(va, vb)), lanes

    def _expr_Max(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else max(va, vb)), lanes

    def _expr_EQ(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va == vb), lanes

    def _expr_NE(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va != vb), lanes

    def _expr_LT(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va < vb), lanes

    def _expr_LE(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va <= vb), lanes

    def _expr_GT(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va > vb), lanes

    def _expr_GE(self, e, times):
        va, vb, lanes = self._binary_operands(e, times)
        return (None if va is None or vb is None else va >= vb), lanes

    def _expr_And(self, e, times):
        # Both operands are evaluated (no short-circuit) and no arithmetic
        # event is emitted — matching the interpreter.
        va, la = self._expr(e.a, times)
        vb, lb = self._expr(e.b, times)
        value = None if va is None or vb is None else bool(va) and bool(vb)
        return value, max(la, lb)

    def _expr_Or(self, e, times):
        va, la = self._expr(e.a, times)
        vb, lb = self._expr(e.b, times)
        value = None if va is None or vb is None else bool(va) or bool(vb)
        return value, max(la, lb)

    def _expr_Not(self, e, times):
        value, lanes = self._expr(e.a, times)
        return (None if value is None else not bool(value)), lanes

    def _expr_Select(self, e, times):
        # The interpreter evaluates all three operands eagerly.
        cv, cl = self._expr(e.condition, times)
        tv, tl = self._expr(e.true_value, times)
        fv, fl = self._expr(e.false_value, times)
        lanes = max(cl, tl, fl)
        if cv is None:
            return None, lanes
        return (tv if bool(cv) else fv), lanes

    def _expr_Let(self, e, times):
        value, lanes = self._expr(e.value, times)
        return self._with_binding(e.name, e.value, value, lanes,
                                  lambda: self._expr(e.body, times))

    def _expr_Ramp(self, e, times):
        self._expr(e.base, times)
        self._expr(e.stride, times)
        return None, e.lanes

    def _expr_Broadcast(self, e, times):
        value, lanes = self._expr(e.value, times)
        return None, (lanes if lanes > 1 else e.lanes)

    def _expr_Load(self, e, times):
        _iv, index_lanes = self._expr(e.index, times)
        lanes = index_lanes if index_lanes > 1 else 1
        self.loads += times * lanes
        self._record_site("load", e.name, e.index, index_lanes, times,
                          element_type=e.type)
        return None, lanes

    def _expr_Call(self, e, times):
        if e.call_type != E.CallType.INTRINSIC:
            raise StaticAnalysisError(
                f"call to {e.name!r} survived lowering; it should have become a Load")
        values = []
        lanes = 1
        for arg in e.args:
            value, arg_lanes = self._expr(arg, times)
            values.append(value)
            lanes = max(lanes, arg_lanes)
        self._arith(times, lanes)
        fn = _INTRINSIC_VALUES.get(e.name)
        if fn is not None and all(v is not None for v in values):
            try:
                return fn(*values), lanes
            except (ValueError, OverflowError, ZeroDivisionError):
                return None, lanes
        return None, lanes


class _Missing:
    pass


_MISSING = _Missing()


def _restore_key(mapping, key, saved):
    if saved is _MISSING:
        mapping.pop(key, None)
    else:
        mapping[key] = saved


_EXPR_TABLE = {
    name[len("_expr_"):]: getattr(StaticCostAnalyzer, name)
    for name in vars(StaticCostAnalyzer)
    if name.startswith("_expr_")
}

_INTRINSIC_VALUES = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "floor": lambda x: float(math.floor(x)),
    "ceil": lambda x: float(math.ceil(x)),
    "round": lambda x: float(np_round(x)),
    "abs": abs,
    "pow": lambda a, b: a ** b,
    "likely": lambda x: x,
}


def np_round(x):
    """Banker's rounding, matching ``np.round``."""
    floor = math.floor(x)
    diff = x - floor
    if diff > 0.5:
        return floor + 1
    if diff < 0.5:
        return floor
    return floor if floor % 2 == 0 else floor + 1


def _base_environment(lowered, sizes: Optional[Sequence[int]],
                      params: Optional[Dict[str, object]]) -> Dict[str, object]:
    env: Dict[str, object] = {}
    if sizes is not None:
        output = lowered.output
        for dim, size in zip(output.args, sizes):
            env[f"{output.name}.{dim}.min"] = 0
            env[f"{output.name}.{dim}.extent"] = int(size)
            env[f"{output.name}.{dim}.max"] = int(size) - 1
    for layout in lowered.image_layouts.values():
        stride = 1
        for i, extent in enumerate(layout.extents):
            value = op.const_value(extent)
            if value is None:
                break
            env.setdefault(f"{layout.name}.min.{i}", 0)
            env.setdefault(f"{layout.name}.extent.{i}", int(value))
            env.setdefault(f"{layout.name}.stride.{i}", stride)
            stride *= int(value)
    for name, value in (params or {}).items():
        if isinstance(value, (int, float, bool)):
            env[name] = value
    return env


def analyze_lowered(lowered, profile=None, *, sizes: Optional[Sequence[int]] = None,
                    params: Optional[Dict[str, object]] = None,
                    analyzer_out: Optional[list] = None):
    """Statically analyze a :class:`~repro.compiler.lower.LoweredPipeline`.

    ``sizes`` supplies the output bounds when the lowering did not already
    substitute them (``compile()`` always does).  Returns the same
    :class:`~repro.machine.cost_model.CostReport` the dynamic model produces.
    ``analyzer_out``, when given, receives the analyzer (exposes ``exact``
    and ``peak_alloc_bytes`` for callers that want more than the report).
    """
    from repro.machine.profiles import XEON_W3520

    if profile is None:
        profile = XEON_W3520
    analyzer = StaticCostAnalyzer(profile, _base_environment(lowered, sizes, params))
    for layout in lowered.image_layouts.values():
        elems = 1
        for extent in layout.extents:
            value = op.const_value(extent)
            if value is None:
                elems = None
                break
            elems *= int(value)
        if elems is not None:
            analyzer.buffer_elems.setdefault(layout.name, elems)
    analyzer.run(lowered.stmt)
    if analyzer_out is not None:
        analyzer_out.append(analyzer)
    return analyzer.report()


def estimate_cost_static(pipeline, sizes: Sequence[int], *,
                         schedule=None, schedules=None, options=None,
                         params=None, profile=None, target=None):
    """Compile (cached) and statically analyze ``pipeline`` at ``sizes``.

    The drop-in static counterpart of
    :func:`repro.machine.cost_model.estimate_cost`: same arguments, same
    :class:`~repro.machine.cost_model.CostReport`, no execution.
    """
    from repro.machine.profiles import XEON_W3520
    from repro.pipeline import Pipeline
    from repro.runtime.target import Target

    if not isinstance(pipeline, Pipeline):
        pipeline = Pipeline(pipeline)
    if profile is None:
        profile = Target.resolve(target).machine_profile() if target is not None \
            else XEON_W3520
    compiled = pipeline.compile(sizes, schedule=schedule, schedules=schedules,
                                options=options, target="interp")
    return analyze_lowered(compiled.lowered, profile, sizes=sizes, params=params)
