"""Interval arithmetic over symbolic expressions (Section 4.2 of the paper).

An :class:`Interval` is a pair of expressions ``[min, max]`` (inclusive); a
``None`` endpoint means unbounded in that direction.  The central entry point
is :func:`bounds_of_expr_in_scope`, which computes an interval containing all
values an expression can take given intervals for the free variables in a
scope.  Unlike the polyhedral model, this analysis can look through min/max,
select, division, clamped loads, and even data-dependent values (a load of a
``uint8`` is known to lie in ``[0, 255]``), which is what lets the compiler
infer every loop bound and allocation size in any pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.ir import expr as E
from repro.ir import op
from repro.analysis.scope import Scope

__all__ = ["Interval", "bounds_of_expr_in_scope", "interval_union", "interval_intersection"]


class Interval:
    """A closed interval ``[min, max]`` with symbolic expression endpoints."""

    __slots__ = ("min", "max")

    def __init__(self, min: Optional[E.Expr], max: Optional[E.Expr]):
        self.min = min
        self.max = max

    # -- constructors -----------------------------------------------------
    @staticmethod
    def everything() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def single_point(e: E.Expr) -> "Interval":
        return Interval(e, e)

    @staticmethod
    def from_const(lo, hi) -> "Interval":
        return Interval(op.as_expr(lo), op.as_expr(hi))

    # -- queries ----------------------------------------------------------
    def is_bounded(self) -> bool:
        return self.min is not None and self.max is not None

    def has_lower_bound(self) -> bool:
        return self.min is not None

    def has_upper_bound(self) -> bool:
        return self.max is not None

    def is_single_point(self) -> bool:
        return self.min is not None and self.max is not None and self.min == self.max

    def is_everything(self) -> bool:
        return self.min is None and self.max is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo = "-inf" if self.min is None else repr(self.min)
        hi = "+inf" if self.max is None else repr(self.max)
        return f"Interval({lo}, {hi})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.min == other.min and self.max == other.max

    def __hash__(self):
        return hash((self.min, self.max))


def interval_union(a: Interval, b: Interval) -> Interval:
    """The smallest interval containing both ``a`` and ``b``."""
    lo = None if a.min is None or b.min is None else op.min_(a.min, b.min)
    hi = None if a.max is None or b.max is None else op.max_(a.max, b.max)
    return Interval(lo, hi)


def interval_intersection(a: Interval, b: Interval) -> Interval:
    """The largest interval contained in both ``a`` and ``b``."""
    if a.min is None:
        lo = b.min
    elif b.min is None:
        lo = a.min
    else:
        lo = op.max_(a.min, b.min)
    if a.max is None:
        hi = b.max
    elif b.max is None:
        hi = a.max
    else:
        hi = op.min_(a.max, b.max)
    return Interval(lo, hi)


def _add(a: Optional[E.Expr], b: Optional[E.Expr]) -> Optional[E.Expr]:
    if a is None or b is None:
        return None
    return a + b


def _sub(a: Optional[E.Expr], b: Optional[E.Expr]) -> Optional[E.Expr]:
    if a is None or b is None:
        return None
    return a - b


# Calls into functions/images of these integer widths are treated as bounded
# by their type range, which is what makes data-dependent gathers (e.g. the
# histogram-equalization CDF lookup) analyzable.
_MAX_TYPE_RANGE_BITS = 16


def bounds_of_expr_in_scope(e: E.Expr, scope: Scope) -> Interval:
    """An interval containing every value ``e`` can take.

    ``scope`` maps variable names to :class:`Interval`.  Free variables not in
    scope are treated as single points (their bound is themselves), so the
    result can be a symbolic expression of outer loop variables.
    """
    if isinstance(e, (E.IntImm, E.FloatImm)):
        return Interval.single_point(e)

    if isinstance(e, E.Variable):
        bound = scope.get(e.name)
        if bound is not None:
            return Interval(bound.min, bound.max)
        return Interval.single_point(e)

    if isinstance(e, E.Cast):
        inner = bounds_of_expr_in_scope(e.value, scope)
        if not inner.is_bounded() and not e.type.is_float() and e.type.bits <= _MAX_TYPE_RANGE_BITS:
            return Interval.from_const(int(e.type.min_value()), int(e.type.max_value()))
        lo = None if inner.min is None else op.cast(e.type.element_of(), inner.min)
        hi = None if inner.max is None else op.cast(e.type.element_of(), inner.max)
        return Interval(lo, hi)

    if isinstance(e, E.Add):
        a = bounds_of_expr_in_scope(e.a, scope)
        b = bounds_of_expr_in_scope(e.b, scope)
        return Interval(_add(a.min, b.min), _add(a.max, b.max))

    if isinstance(e, E.Sub):
        a = bounds_of_expr_in_scope(e.a, scope)
        b = bounds_of_expr_in_scope(e.b, scope)
        return Interval(_sub(a.min, b.max), _sub(a.max, b.min))

    if isinstance(e, E.Mul):
        return _bounds_of_mul(e, scope)

    if isinstance(e, E.Div):
        return _bounds_of_div(e, scope)

    if isinstance(e, E.Mod):
        return _bounds_of_mod(e, scope)

    if isinstance(e, E.Min):
        a = bounds_of_expr_in_scope(e.a, scope)
        b = bounds_of_expr_in_scope(e.b, scope)
        lo = None if a.min is None or b.min is None else op.min_(a.min, b.min)
        if a.max is None:
            hi = b.max
        elif b.max is None:
            hi = a.max
        else:
            hi = op.min_(a.max, b.max)
        return Interval(lo, hi)

    if isinstance(e, E.Max):
        a = bounds_of_expr_in_scope(e.a, scope)
        b = bounds_of_expr_in_scope(e.b, scope)
        hi = None if a.max is None or b.max is None else op.max_(a.max, b.max)
        if a.min is None:
            lo = b.min
        elif b.min is None:
            lo = a.min
        else:
            lo = op.max_(a.min, b.min)
        return Interval(lo, hi)

    if isinstance(e, E.Select):
        t = bounds_of_expr_in_scope(e.true_value, scope)
        f = bounds_of_expr_in_scope(e.false_value, scope)
        return interval_union(t, f)

    if isinstance(e, (E.EQ, E.NE, E.LT, E.LE, E.GT, E.GE, E.And, E.Or, E.Not)):
        return Interval.from_const(0, 1)

    if isinstance(e, E.Let):
        value_bounds = bounds_of_expr_in_scope(e.value, scope)
        with scope.bound(e.name, value_bounds):
            return bounds_of_expr_in_scope(e.body, scope)

    if isinstance(e, E.Broadcast):
        return bounds_of_expr_in_scope(e.value, scope)

    if isinstance(e, E.Ramp):
        base = bounds_of_expr_in_scope(e.base, scope)
        stride = bounds_of_expr_in_scope(e.stride, scope)
        if not base.is_bounded() or not stride.is_bounded():
            return Interval.everything()
        last_lo = base.min + stride.min * (e.lanes - 1)
        last_hi = base.max + stride.max * (e.lanes - 1)
        return Interval(op.min_(base.min, last_lo), op.max_(base.max, last_hi))

    if isinstance(e, E.Call):
        return _bounds_of_call(e, scope)

    if isinstance(e, E.Load):
        if not e.type.is_float() and e.type.bits <= _MAX_TYPE_RANGE_BITS:
            return Interval.from_const(int(e.type.min_value()), int(e.type.max_value()))
        return Interval.everything()

    return Interval.everything()


def _bounds_of_mul(e: E.Mul, scope: Scope) -> Interval:
    a = bounds_of_expr_in_scope(e.a, scope)
    b = bounds_of_expr_in_scope(e.b, scope)

    def scale(iv: Interval, factor: E.Expr) -> Interval:
        value = op.const_value(factor)
        if value is None:
            if not iv.is_bounded():
                return Interval.everything()
            lo = op.min_(iv.min * factor, iv.max * factor)
            hi = op.max_(iv.min * factor, iv.max * factor)
            return Interval(lo, hi)
        if value >= 0:
            lo = None if iv.min is None else iv.min * factor
            hi = None if iv.max is None else iv.max * factor
            return Interval(lo, hi)
        lo = None if iv.max is None else iv.max * factor
        hi = None if iv.min is None else iv.min * factor
        return Interval(lo, hi)

    if b.is_single_point() and b.min is not None:
        return scale(a, b.min)
    if a.is_single_point() and a.min is not None:
        return scale(b, a.min)
    if a.is_bounded() and b.is_bounded():
        products = [a.min * b.min, a.min * b.max, a.max * b.min, a.max * b.max]
        lo = products[0]
        hi = products[0]
        for p in products[1:]:
            lo = op.min_(lo, p)
            hi = op.max_(hi, p)
        return Interval(lo, hi)
    return Interval.everything()


def _bounds_of_div(e: E.Div, scope: Scope) -> Interval:
    a = bounds_of_expr_in_scope(e.a, scope)
    b = bounds_of_expr_in_scope(e.b, scope)
    if b.is_single_point() and b.min is not None:
        value = op.const_value(b.min)
        if value is not None and value != 0:
            if value > 0:
                lo = None if a.min is None else a.min / b.min
                hi = None if a.max is None else a.max / b.min
            else:
                lo = None if a.max is None else a.max / b.min
                hi = None if a.min is None else a.min / b.min
            return Interval(lo, hi)
        if value is None and a.is_bounded():
            # Symbolic positive divisor (e.g. a tile size parameter): assume >= 1.
            return interval_union(Interval(a.min / b.min, a.max / b.min), Interval(a.min, a.max))
    return Interval.everything()


def _bounds_of_mod(e: E.Mod, scope: Scope) -> Interval:
    b = bounds_of_expr_in_scope(e.b, scope)
    if b.is_single_point() and b.min is not None:
        value = op.const_value(b.min)
        if value is not None and value > 0:
            if e.type.is_float():
                return Interval(op.const(0.0, e.type), b.min)
            return Interval(op.const(0, e.type), b.min - 1)
    if b.has_upper_bound():
        return Interval(op.const(0, e.type.element_of()), b.max)
    return Interval.everything()


_MONOTONIC_INTRINSICS = {"floor", "ceil", "round", "trunc", "sqrt", "exp", "log", "abs"}


def _bounds_of_call(e: E.Call, scope: Scope) -> Interval:
    if e.call_type == E.CallType.INTRINSIC:
        if e.name == "likely":
            return bounds_of_expr_in_scope(e.args[0], scope)
        if e.name in ("floor", "ceil", "round", "trunc"):
            inner = bounds_of_expr_in_scope(e.args[0], scope)
            wrap = lambda x: E.Call(e.type, e.name, [x], E.CallType.INTRINSIC)
            lo = None if inner.min is None else wrap(inner.min)
            hi = None if inner.max is None else wrap(inner.max)
            return Interval(lo, hi)
        if e.name == "abs":
            inner = bounds_of_expr_in_scope(e.args[0], scope)
            if inner.is_bounded():
                wrap = lambda x: E.Call(e.type, "abs", [x], E.CallType.INTRINSIC)
                return Interval(op.const(0, e.type.element_of()), op.max_(wrap(inner.min), wrap(inner.max)))
            return Interval(op.const(0, e.type.element_of()), None)
    # Reads of other stages or input images: bounded only by their type range.
    if not e.type.is_float() and e.type.bits <= _MAX_TYPE_RANGE_BITS:
        return Interval.from_const(int(e.type.min_value()), int(e.type.max_value()))
    return Interval.everything()
