"""A simple lexical scope used by analyses and the simplifier.

Scopes map variable names to arbitrary values (intervals, expressions, or
Python numbers depending on the client) and support cheap push/pop so that
recursive tree walks can shadow bindings.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["Scope"]


class Scope(Generic[T]):
    """A stack of name bindings with shadowing."""

    def __init__(self, parent: Optional["Scope[T]"] = None):
        self._bindings: Dict[str, List[T]] = {}
        self._parent = parent

    def contains(self, name: str) -> bool:
        if name in self._bindings and self._bindings[name]:
            return True
        return self._parent.contains(name) if self._parent is not None else False

    def __contains__(self, name: str) -> bool:
        return self.contains(name)

    def get(self, name: str, default: Optional[T] = None) -> Optional[T]:
        stack = self._bindings.get(name)
        if stack:
            return stack[-1]
        if self._parent is not None:
            return self._parent.get(name, default)
        return default

    def __getitem__(self, name: str) -> T:
        value = self.get(name, _MISSING)
        if value is _MISSING:
            raise KeyError(name)
        return value

    def push(self, name: str, value: T) -> None:
        self._bindings.setdefault(name, []).append(value)

    def pop(self, name: str) -> T:
        stack = self._bindings.get(name)
        if not stack:
            raise KeyError(f"pop of unbound name {name!r}")
        return stack.pop()

    def bound(self, name: str, value: T) -> "_ScopedBinding[T]":
        """Context manager that binds ``name`` for the duration of a block."""
        return _ScopedBinding(self, name, value)

    def items(self) -> Iterator[Tuple[str, T]]:
        seen = set()
        scope: Optional[Scope[T]] = self
        while scope is not None:
            for name, stack in scope._bindings.items():
                if stack and name not in seen:
                    seen.add(name)
                    yield name, stack[-1]
            scope = scope._parent


class _ScopedBinding(Generic[T]):
    def __init__(self, scope: Scope[T], name: str, value: T):
        self._scope = scope
        self._name = name
        self._value = value

    def __enter__(self):
        self._scope.push(self._name, self._value)
        return self._scope

    def __exit__(self, exc_type, exc, tb):
        self._scope.pop(self._name)
        return False


class _Missing:
    pass


_MISSING = _Missing()
