"""The user-facing Halide-style embedded DSL.

Pipelines are written as chains of :class:`Func` objects defining images as
pure functions over an infinite integer domain (Section 2 of the paper)::

    from repro.lang import Func, Var, Buffer
    from repro import UInt

    x, y = Var("x"), Var("y")
    in_ = Buffer.from_array(image, name="input")
    blur_x, blur_y = Func("blur_x"), Func("blur_y")
    blur_x[x, y] = (in_[x - 1, y] + in_[x, y] + in_[x + 1, y]) / 3
    blur_y[x, y] = (blur_x[x, y - 1] + blur_x[x, y] + blur_x[x, y + 1]) / 3

Schedules are applied to the same objects (``blur_y.tile(...).parallel(...)``,
``blur_x.compute_at(blur_y, x)``), and :meth:`Func.realize` runs the compiled
pipeline.
"""

from repro.lang.var import Var
from repro.lang.rdom import RDom, RVar
from repro.lang.buffer import Buffer
from repro.lang.param import ImageParam, Param
from repro.lang.func import Func, FuncRef
from repro.lang.builtins import (
    abs_,
    cast,
    ceil,
    clamp,
    cos,
    exp,
    floor,
    log,
    max_,
    maximum,
    min_,
    minimum,
    pow_,
    product,
    round_,
    select,
    sin,
    sqrt,
    sum_,
)
from repro.lang.boundary import constant_exterior, mirror_image, repeat_edge

__all__ = [
    "Var",
    "RDom",
    "RVar",
    "Buffer",
    "ImageParam",
    "Param",
    "Func",
    "FuncRef",
    "abs_",
    "cast",
    "ceil",
    "clamp",
    "cos",
    "exp",
    "floor",
    "log",
    "max_",
    "maximum",
    "min_",
    "minimum",
    "pow_",
    "product",
    "round_",
    "select",
    "sin",
    "sqrt",
    "sum_",
    "constant_exterior",
    "mirror_image",
    "repeat_edge",
]
