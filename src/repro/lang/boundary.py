"""Boundary condition helpers.

Because Funcs are defined over an infinite domain, boundary conditions are
ordinary stages: a wrapper Func that clamps, mirrors, or pads its source.
These helpers build the common patterns used by the example applications.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.ir import op
from repro.lang.var import Var

__all__ = ["repeat_edge", "constant_exterior", "mirror_image"]


def _extents_of(source, bounds):
    if bounds is not None:
        return list(bounds)
    if hasattr(source, "shape"):
        return [(0, int(extent)) for extent in source.shape]
    raise ValueError(
        "boundary conditions need explicit bounds [(min, extent), ...] unless the "
        "source is a concrete Buffer"
    )


def _make_vars(n: int) -> Tuple[Var, ...]:
    names = ("x", "y", "c", "w")
    return tuple(Var(f"_{names[i] if i < len(names) else i}") for i in range(n))


def repeat_edge(source, bounds: Optional[Sequence[Tuple[int, int]]] = None,
                name: Optional[str] = None):
    """Clamp out-of-range coordinates to the nearest edge of the source."""
    from repro.lang.func import Func

    extents = _extents_of(source, bounds)
    variables = _make_vars(len(extents))
    clamped = [
        op.clamp(v, mn, mn + extent - 1) for v, (mn, extent) in zip(variables, extents)
    ]
    wrapper = Func(name if name is not None else f"{getattr(source, 'name', 'img')}_clamped")
    wrapper[variables] = source[tuple(clamped)]
    return wrapper


def constant_exterior(source, value, bounds: Optional[Sequence[Tuple[int, int]]] = None,
                      name: Optional[str] = None):
    """Return ``value`` outside the source bounds, the source inside."""
    from repro.lang.func import Func

    extents = _extents_of(source, bounds)
    variables = _make_vars(len(extents))
    inside = None
    clamped = []
    for v, (mn, extent) in zip(variables, extents):
        this_dim = (v >= mn) & (v <= mn + extent - 1)
        inside = this_dim if inside is None else (inside & this_dim)
        clamped.append(op.clamp(v, mn, mn + extent - 1))
    wrapper = Func(name if name is not None else f"{getattr(source, 'name', 'img')}_padded")
    interior = source[tuple(clamped)]
    wrapper[variables] = op.make_select(inside, interior, op.cast(interior.type, value))
    return wrapper


def mirror_image(source, bounds: Optional[Sequence[Tuple[int, int]]] = None,
                 name: Optional[str] = None):
    """Reflect coordinates about the edges of the source (mirror boundary)."""
    from repro.lang.func import Func

    extents = _extents_of(source, bounds)
    variables = _make_vars(len(extents))
    mirrored = []
    for v, (mn, extent) in zip(variables, extents):
        # Reflect into [0, 2*extent), then fold the upper half back down.
        offset = (v - mn) % (2 * extent)
        folded = op.make_select(offset < extent, offset, 2 * extent - 1 - offset)
        mirrored.append(folded + mn)
    wrapper = Func(name if name is not None else f"{getattr(source, 'name', 'img')}_mirrored")
    wrapper[variables] = source[tuple(mirrored)]
    return wrapper
