"""The central DSL object: :class:`Func`, a stage of an image processing pipeline.

A ``Func`` is defined once over pure variables (``f[x, y] = expr``), may be
extended with update definitions (reductions, scans, scatters), is scheduled
through chainable methods (``tile``, ``vectorize``, ``parallel``,
``compute_at``, ``store_at``...), and is executed with :meth:`Func.realize`.

The algorithm-side API and the schedule-side API live on the same object but
never interact: the schedule can only change *how* the pipeline runs, never
*what* it computes — the property the paper's split design guarantees.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.function import Function
from repro.core.loop_level import LoopLevel
from repro.core.schedule import ScheduleError
from repro.core.split import TailStrategy
from repro.ir import op
from repro.ir.expr import Call, CallType, Expr
from repro.lang.rdom import RDom, RVar, rvars_in
from repro.lang.var import Var

__all__ = ["Func", "FuncRef"]

_counter = itertools.count()


class FuncRef(Expr):
    """A reference to a point of a Func (``f[x, y]``), usable inside expressions."""

    __slots__ = ("func", "args")

    def __init__(self, func: "Func", args: Sequence[Expr]):
        self.func = func
        self.args = tuple(op.as_expr(a) for a in args)
        function = func.function
        if function.has_pure_definition():
            self.type = function.output_type
        else:
            from repro.types import Int

            self.type = Int(32)

    def _key(self):
        return (self.func.name, self.args)

    def to_call(self) -> Call:
        """The IR call node this reference stands for."""
        function = self.func.function
        if not function.has_pure_definition():
            raise RuntimeError(
                f"function {self.func.name!r} is used before it is defined; "
                "give it a pure definition first"
            )
        return Call(function.output_type, function.name, self.args, CallType.HALIDE,
                    target=function)


def _lower_func_refs(e: Expr) -> Expr:
    """Replace :class:`FuncRef` nodes with IR calls throughout an expression."""
    from repro.ir.mutator import IRMutator

    class _Lower(IRMutator):
        def visit_FuncRef(self, node: FuncRef):
            call = node.to_call()
            args = [self.mutate(a) for a in call.args]
            return Call(call.type, call.name, args, call.call_type, target=call.target)

    return _Lower().mutate(op.as_expr(e))


class Func:
    """One stage of a pipeline (a wrapper around :class:`repro.core.function.Function`)."""

    def __init__(self, name: Optional[str] = None):
        self.function = Function(name if name is not None else f"f{next(_counter)}")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.function.name

    @property
    def schedule(self):
        sched = self.function.schedule
        if sched is None:
            raise RuntimeError(f"function {self.name!r} must be defined before it is scheduled")
        return sched

    def defined(self) -> bool:
        return self.function.has_pure_definition()

    def dimensions(self) -> int:
        return self.function.dimensions()

    @property
    def args(self) -> List[str]:
        return self.function.args

    @property
    def output_type(self):
        return self.function.output_type

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Func({self.name!r})"

    # ------------------------------------------------------------------
    # definitions
    # ------------------------------------------------------------------
    def __getitem__(self, args) -> FuncRef:
        if not isinstance(args, tuple):
            args = (args,)
        return FuncRef(self, args)

    def __call__(self, *args) -> FuncRef:
        return self[args]

    def __setitem__(self, args, value) -> None:
        if not isinstance(args, tuple):
            args = (args,)
        value = _lower_func_refs(op.as_expr(value))

        is_pure_lhs = (
            all(isinstance(a, Var) and not isinstance(a, RVar) for a in args)
            and len({a.name for a in args}) == len(args)
        )
        if is_pure_lhs and not self.function.has_pure_definition():
            self.function.define([a.name for a in args], value)
            return

        # Anything else is an update definition.
        arg_exprs = [_lower_func_refs(op.as_expr(a)) for a in args]
        rvars = rvars_in(list(arg_exprs) + [value])
        rdom = None
        if rvars:
            domains = {id(v.domain): v.domain for v in rvars if v.domain is not None}
            if len(domains) > 1:
                raise ValueError(
                    f"update of {self.name!r} mixes reduction variables from different RDoms"
                )
            rdom = next(iter(domains.values())).domain if domains else None
        self.function.define_update(arg_exprs, value, rdom)

    # ------------------------------------------------------------------
    # domain-order scheduling directives (all return self for chaining)
    # ------------------------------------------------------------------
    @staticmethod
    def _name_of(v) -> str:
        return v.name if hasattr(v, "name") else str(v)

    def split(self, old, outer, inner, factor: int,
              tail: TailStrategy = TailStrategy.ROUND_UP) -> "Func":
        """Split dimension ``old`` into ``outer`` (slow) and ``inner`` (fast) by ``factor``."""
        self.schedule.split(self._name_of(old), self._name_of(outer),
                            self._name_of(inner), factor, tail)
        return self

    def tile(self, x, y, xo, yo, xi, yi, xfactor: int, yfactor: int) -> "Func":
        """Tile the (x, y) domain: split both and order the tile loops innermost."""
        self.split(x, xo, xi, xfactor)
        self.split(y, yo, yi, yfactor)
        self.reorder(xi, yi, xo, yo)
        return self

    def reorder(self, *vars) -> "Func":
        """Reorder loop dimensions; arguments are given innermost first."""
        self.schedule.reorder([self._name_of(v) for v in vars])
        return self

    def parallel(self, var) -> "Func":
        """Execute a dimension's iterations in parallel."""
        self.schedule.parallel(self._name_of(var))
        return self

    def serial(self, var) -> "Func":
        """Execute a dimension sequentially (the default)."""
        self.schedule.serial(self._name_of(var))
        return self

    def vectorize(self, var, factor: Optional[int] = None) -> "Func":
        """Vectorize a dimension.

        With ``factor``, the dimension is first split by the vector width (the
        outer part keeps iterating serially and gets the name ``<var>o``, the
        inner part ``<var>i`` is vectorized); without, the dimension must
        already have a constant extent (e.g. be the inner half of a split).
        """
        name = self._name_of(var)
        if factor is not None:
            outer, inner = self._fresh_names(name)
            self.schedule.split(name, outer, inner, factor)
            self.schedule.vectorize(inner)
        else:
            self.schedule.vectorize(name)
        return self

    def unroll(self, var, factor: Optional[int] = None) -> "Func":
        """Unroll a dimension (splitting first when a factor is given)."""
        name = self._name_of(var)
        if factor is not None:
            outer, inner = self._fresh_names(name)
            self.schedule.split(name, outer, inner, factor)
            self.schedule.unroll(inner)
        else:
            self.schedule.unroll(name)
        return self

    def _fresh_names(self, base: str) -> Tuple[str, str]:
        outer, inner = f"{base}o", f"{base}i"
        suffix = 0
        while self.schedule.has_dim(outer) or self.schedule.has_dim(inner):
            suffix += 1
            outer, inner = f"{base}o{suffix}", f"{base}i{suffix}"
        return outer, inner

    def bound(self, var, min_value: int, extent: int) -> "Func":
        """Promise the realized bounds of a storage dimension (e.g. color channels)."""
        self.schedule.bound(self._name_of(var), min_value, extent)
        return self

    def gpu_blocks(self, *vars) -> "Func":
        """Map dimensions onto the simulated GPU's block grid."""
        for v in vars:
            self.schedule.gpu_blocks(self._name_of(v))
        return self

    def gpu_threads(self, *vars) -> "Func":
        """Map dimensions onto the simulated GPU's threads within a block."""
        for v in vars:
            self.schedule.gpu_threads(self._name_of(v))
        return self

    def gpu_tile(self, x, y, xi, yi, xfactor: int, yfactor: int) -> "Func":
        """Tile and map the tile grid to GPU blocks and the intra-tile loops to threads."""
        xo, yo = Var(f"{self._name_of(x)}_blk"), Var(f"{self._name_of(y)}_blk")
        self.tile(x, y, xo, yo, xi, yi, xfactor, yfactor)
        self.gpu_blocks(xo, yo)
        self.gpu_threads(xi, yi)
        return self

    # ------------------------------------------------------------------
    # call-schedule directives
    # ------------------------------------------------------------------
    def compute_at(self, consumer: "Func", var) -> "Func":
        """Compute this stage as needed for each iteration of ``consumer``'s loop ``var``."""
        self.schedule.compute_at(LoopLevel.at(consumer.name, self._name_of(var)))
        return self

    def compute_root(self) -> "Func":
        """Compute this stage entirely before any consumer runs (breadth-first)."""
        self.schedule.compute_root()
        return self

    def compute_inline(self) -> "Func":
        """Inline this stage into its callers (the default for pure stages)."""
        self.schedule.compute_inline()
        return self

    def store_at(self, consumer: "Func", var) -> "Func":
        """Allocate this stage's storage at ``consumer``'s loop ``var``."""
        self.schedule.store_at(LoopLevel.at(consumer.name, self._name_of(var)))
        return self

    def store_root(self) -> "Func":
        """Allocate this stage's storage outside all loops."""
        self.schedule.store_root()
        return self

    def rdom_outer(self) -> "Func":
        """Iterate update stages with the reduction loops hoisted outermost.

        The default update nest runs the RDom loops innermost; with this
        directive the free pure-variable loops run inside (first argument
        innermost), which exposes them to batching and parallelism — e.g. an
        ordered blend ``f[x, y] = f[x, y] * (1 - a) + src * a`` becomes a
        per-``r`` data-parallel sweep over the image.  Lowering validates the
        interchange is observationally sound (the update must reference the
        function only at its own point, and the RDom bounds must not depend
        on the pure variables) and raises
        :class:`~repro.core.schedule.ScheduleError` otherwise.
        """
        self.schedule.rdom_outer = True
        return self

    def storage_fold(self, var, factor: int) -> "Func":
        """Fold this stage's storage along ``var`` into a ring of ``factor`` entries.

        The factor need not be a power of two, but must cover the widest
        window any consumer iteration touches; an illegal fold raises
        :class:`~repro.core.schedule.ScheduleError` during lowering with a
        diagnostic saying why (parallel consumer loop, non-constant window,
        non-marching accesses, ...).
        """
        self.schedule.storage_folds[self._name_of(var)] = int(factor)
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def realize(self, sizes: Sequence[int], **kwargs) -> np.ndarray:
        """Compile and run the pipeline, returning the output as a numpy array.

        ``sizes`` gives the extent of each output dimension (width, height, ...).
        Keyword arguments are forwarded to :class:`repro.pipeline.Pipeline.realize`
        (notably ``schedule=`` for a :class:`~repro.core.Schedule` value and
        ``target=`` for a :class:`~repro.runtime.Target` / backend name).
        """
        from repro.pipeline import Pipeline

        return Pipeline(self).realize(sizes, **kwargs)

    def compile(self, sizes: Sequence[int], schedule=None, target=None, **kwargs):
        """Compile (without running) the pipeline rooted at this Func.

        Returns a reusable :class:`~repro.pipeline.CompiledPipeline`; see
        :meth:`repro.pipeline.Pipeline.compile`.  Note the returned object is
        compiled from a fresh Pipeline, so its cache is not shared — hold on
        to a :class:`~repro.pipeline.Pipeline` for compile-once/run-many use.
        """
        from repro.pipeline import Pipeline

        return Pipeline(self).compile(sizes, schedule=schedule, target=target, **kwargs)

    def compile_to_stmt(self, sizes: Optional[Sequence[int]] = None):
        """Lower the pipeline and return the IR statement (for inspection/tests)."""
        from repro.pipeline import Pipeline

        return Pipeline(self).lower(sizes)

    def print_loop_nest(self, sizes: Optional[Sequence[int]] = None) -> str:
        """A human-readable rendering of the synthesized loop nest."""
        from repro.ir.printer import pretty_print

        return pretty_print(self.compile_to_stmt(sizes))
