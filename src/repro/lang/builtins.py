"""Built-in operations of the DSL: math intrinsics and inline reductions.

``sum_``, ``product``, ``maximum`` and ``minimum`` build the small helper
stages that the paper's higher-order sugar would produce: an initial value
plus an update over the reduction domain, returned as a call so they compose
inside larger expressions.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Union

from repro.ir import op
from repro.ir.expr import Call, CallType, Expr, Variable
from repro.lang.rdom import RDom, RVar, rvars_in
from repro.lang.var import Var
from repro.types import Float, Type

__all__ = [
    "cast",
    "select",
    "min_",
    "max_",
    "clamp",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "pow_",
    "abs_",
    "floor",
    "ceil",
    "round_",
    "sum_",
    "product",
    "maximum",
    "minimum",
]

cast = op.cast
select = op.make_select
min_ = op.min_
max_ = op.max_
clamp = op.clamp

_counter = itertools.count()


def _math_call(name: str, x, result_type: Optional[Type] = None) -> Expr:
    e = op.as_expr(x)
    if result_type is None:
        result_type = e.type if e.type.is_float() else Float(32, e.type.lanes)
    if not e.type.is_float():
        e = op.cast(Float(32, e.type.lanes), e)
    return Call(result_type, name, [e], CallType.INTRINSIC)


def sqrt(x) -> Expr:
    """Square root (always float)."""
    return _math_call("sqrt", x)


def exp(x) -> Expr:
    """Exponential (always float)."""
    return _math_call("exp", x)


def log(x) -> Expr:
    """Natural logarithm (always float)."""
    return _math_call("log", x)


def sin(x) -> Expr:
    return _math_call("sin", x)


def cos(x) -> Expr:
    return _math_call("cos", x)


def pow_(x, y) -> Expr:
    """``x ** y`` in floating point."""
    ex = op.as_expr(x)
    ey = op.as_expr(y)
    t = Float(32, max(ex.type.lanes, ey.type.lanes))
    if not ex.type.is_float():
        ex = op.cast(Float(32, ex.type.lanes), ex)
    if not ey.type.is_float():
        ey = op.cast(Float(32, ey.type.lanes), ey)
    return Call(t, "pow", [ex, ey], CallType.INTRINSIC)


def abs_(x) -> Expr:
    """Absolute value."""
    e = op.as_expr(x)
    return Call(e.type, "abs", [e], CallType.INTRINSIC)


def floor(x) -> Expr:
    """Largest integer not greater than x (returned as float)."""
    return _math_call("floor", x)


def ceil(x) -> Expr:
    """Smallest integer not less than x (returned as float)."""
    return _math_call("ceil", x)


def round_(x) -> Expr:
    """Round to nearest integer (returned as float)."""
    return _math_call("round", x)


def _pure_vars_of(e: Expr) -> List[Var]:
    """Pure (non-reduction) variables of an expression, in order of appearance."""
    from repro.ir.visitor import children_of

    found: List[Var] = []
    seen = set()

    def walk(node):
        if isinstance(node, RVar):
            return
        if isinstance(node, Var):
            if node.name not in seen:
                seen.add(node.name)
                found.append(node)
            return
        if isinstance(node, Expr):
            for child in children_of(node):
                walk(child)

    walk(e)
    return found


def _inline_reduction(e, init_value, combine, name: Optional[str], kind: str) -> Expr:
    """Build the helper Func implementing an inline reduction and return a call to it."""
    from repro.lang.func import Func

    expr = op.as_expr(e)
    rvars = rvars_in(expr)
    if not rvars:
        raise ValueError(f"{kind}() requires an expression involving a reduction domain")
    pure_vars = _pure_vars_of(expr)
    helper = Func(name if name is not None else f"{kind}{next(_counter)}")
    helper[tuple(pure_vars) if pure_vars else (Var("_"),)] = op.cast(expr.type, init_value)
    ref = helper[tuple(pure_vars) if pure_vars else (0,)]
    helper[tuple(pure_vars) if pure_vars else (0,)] = combine(ref, expr)
    if pure_vars:
        return helper[tuple(pure_vars)]
    return helper[0]


def sum_(e, name: Optional[str] = None) -> Expr:
    """Sum of an expression over its reduction domain (an inline reduction)."""
    return _inline_reduction(e, 0, lambda acc, x: acc + x, name, "sum")


def product(e, name: Optional[str] = None) -> Expr:
    """Product of an expression over its reduction domain."""
    return _inline_reduction(e, 1, lambda acc, x: acc * x, name, "product")


def maximum(e, name: Optional[str] = None) -> Expr:
    """Maximum of an expression over its reduction domain."""
    expr = op.as_expr(e)
    lowest = expr.type.min_value()
    return _inline_reduction(expr, lowest, op.max_, name, "maximum")


def minimum(e, name: Optional[str] = None) -> Expr:
    """Minimum of an expression over its reduction domain."""
    expr = op.as_expr(e)
    highest = expr.type.max_value()
    return _inline_reduction(expr, highest, op.min_, name, "minimum")
