"""Runtime parameters: scalar :class:`Param` and whole-image :class:`ImageParam`.

The paper's generated pipelines are C-ABI functions taking buffers and scalar
parameters.  Here, parameters are bound to Python values / numpy arrays before
``realize`` is called; reading an unbound parameter raises.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.ir import op
from repro.ir.expr import Call, CallType, Expr, Variable
from repro.lang.buffer import Buffer
from repro.types import Type

__all__ = ["Param", "ImageParam"]

_counter = itertools.count()


class Param:
    """A named scalar runtime parameter (e.g. a filter strength)."""

    def __init__(self, type: Type, name: Optional[str] = None, value=None):
        self.name = name if name is not None else f"p{next(_counter)}"
        self.type = type
        self.value = value

    def set(self, value) -> None:
        self.value = value

    def expr(self) -> Expr:
        """The parameter as an expression (a free variable bound at runtime)."""
        return Variable(self.name, self.type)

    # Allow `param + 1` style arithmetic by delegating to the variable expr.
    def __add__(self, other):
        return self.expr() + other

    def __radd__(self, other):
        return other + self.expr()

    def __sub__(self, other):
        return self.expr() - other

    def __rsub__(self, other):
        return other - self.expr()

    def __mul__(self, other):
        return self.expr() * other

    def __rmul__(self, other):
        return other * self.expr()

    def __truediv__(self, other):
        return self.expr() / other

    def __rtruediv__(self, other):
        return other / self.expr()


class ImageParam:
    """A named image parameter, bound to a :class:`Buffer` before execution."""

    def __init__(self, type: Type, dimensions: int, name: Optional[str] = None):
        self.name = name if name is not None else f"img{next(_counter)}"
        self.type = type
        self._dimensions = dimensions
        self._buffer: Optional[Buffer] = None

    def dimensions(self) -> int:
        return self._dimensions

    def set(self, buffer) -> None:
        """Bind a numpy array or :class:`Buffer` to this parameter."""
        if isinstance(buffer, np.ndarray):
            buffer = Buffer(buffer, name=self.name)
        if buffer.dimensions() != self._dimensions:
            raise ValueError(
                f"image parameter {self.name!r} expects {self._dimensions} dimensions, "
                f"got {buffer.dimensions()}"
            )
        expected = self.type.to_numpy_dtype()
        if buffer.array.dtype != expected:
            raise TypeError(
                f"image parameter {self.name!r} expects dtype {expected}, "
                f"got {buffer.array.dtype}"
            )
        self._buffer = buffer

    def get(self) -> Buffer:
        if self._buffer is None:
            raise RuntimeError(f"image parameter {self.name!r} is unbound")
        return self._buffer

    def is_bound(self) -> bool:
        return self._buffer is not None

    def width(self) -> int:
        return self.get().width()

    def height(self) -> int:
        return self.get().height()

    def channels(self) -> int:
        return self.get().channels()

    def __getitem__(self, args) -> Expr:
        if not isinstance(args, tuple):
            args = (args,)
        if len(args) != self._dimensions:
            raise IndexError(
                f"image parameter {self.name!r} has {self._dimensions} dimensions, "
                f"indexed with {len(args)}"
            )
        index_exprs = [op.as_expr(a) for a in args]
        return Call(self.type, self.name, index_exprs, CallType.IMAGE, target=self)

    def __call__(self, *args) -> Expr:
        return self[args]
