"""Concrete images: numpy-backed buffers readable from pipeline definitions.

A :class:`Buffer` wraps a numpy array.  Dimension ``i`` of the buffer
corresponds to axis ``i`` of the array, and by convention images are indexed
``(x, y[, c])`` — i.e. ``shape = (width, height[, channels])``.  Reading a
buffer inside a Func definition (``in_[x - 1, y]``) produces an ``IMAGE`` call
in the IR; the runtime resolves it against the wrapped array.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ir import op
from repro.ir.expr import Call, CallType, Expr
from repro.types import Type

__all__ = ["Buffer"]

_counter = itertools.count()


class Buffer:
    """A named, typed, numpy-backed image."""

    def __init__(self, array: np.ndarray, name: Optional[str] = None):
        self.name = name if name is not None else f"buf{next(_counter)}"
        self.array = np.ascontiguousarray(array)
        self.type: Type = Type.from_numpy_dtype(self.array.dtype)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_array(cls, array: np.ndarray, name: Optional[str] = None) -> "Buffer":
        return cls(array, name)

    @classmethod
    def zeros(cls, shape: Sequence[int], type: Type, name: Optional[str] = None) -> "Buffer":
        return cls(np.zeros(tuple(shape), dtype=type.to_numpy_dtype()), name)

    # -- geometry ---------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape

    def dimensions(self) -> int:
        return self.array.ndim

    def width(self) -> int:
        return int(self.array.shape[0])

    def height(self) -> int:
        return int(self.array.shape[1])

    def channels(self) -> int:
        return int(self.array.shape[2]) if self.array.ndim >= 3 else 1

    def extent(self, dim: int) -> int:
        return int(self.array.shape[dim])

    # -- use inside definitions --------------------------------------------
    def __getitem__(self, args) -> Expr:
        if not isinstance(args, tuple):
            args = (args,)
        if len(args) != self.array.ndim:
            raise IndexError(
                f"buffer {self.name!r} has {self.array.ndim} dimensions, "
                f"indexed with {len(args)}"
            )
        index_exprs = [op.as_expr(a) for a in args]
        return Call(self.type, self.name, index_exprs, CallType.IMAGE, target=self)

    def __call__(self, *args) -> Expr:
        return self[args]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.name!r}, shape={self.array.shape}, type={self.type!r})"
