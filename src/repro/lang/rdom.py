"""Reduction domains (``RDom``) and reduction variables (``RVar``).

A reduction domain is a bounded, ordered, multi-dimensional iteration space.
Update definitions that use its variables are applied in lexicographic order
across the domain, which is how histograms, scans, and general convolutions
are expressed (Section 2, "Reduction functions").
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Union

from repro.core.definition import ReductionDomain, ReductionVariable
from repro.ir import op
from repro.ir.expr import Expr, Variable
from repro.types import Int

__all__ = ["RVar", "RDom"]

_counter = itertools.count()


class RVar(Variable):
    """One variable of a reduction domain."""

    __slots__ = ("min", "extent", "domain")

    def __init__(self, name: str, min, extent, domain: "RDom" = None):
        super().__init__(name, Int(32))
        self.min = op.as_expr(min)
        self.extent = op.as_expr(extent)
        self.domain = domain


class RDom:
    """A multi-dimensional reduction domain.

    Construct with ``(min, extent)`` pairs, one per dimension::

        r = RDom(0, width, 0, height)     # r.x over [0, width), r.y over [0, height)
        ri = RDom(0, 256)                 # ri over [0, 256)

    The first four dimensions are accessible as ``r.x``, ``r.y``, ``r.z``,
    ``r.w``; a one-dimensional domain can be used directly as an expression.
    """

    _dim_names = ("x", "y", "z", "w")

    def __init__(self, *ranges, name: str = None):
        if len(ranges) % 2 != 0:
            raise ValueError("RDom expects (min, extent) pairs")
        if not ranges:
            raise ValueError("RDom needs at least one (min, extent) pair")
        self.name = name if name is not None else f"r{next(_counter)}"
        pairs = [(ranges[i], ranges[i + 1]) for i in range(0, len(ranges), 2)]
        self._rvars: List[RVar] = []
        for i, (mn, ext) in enumerate(pairs):
            suffix = self._dim_names[i] if i < len(self._dim_names) else str(i)
            rvar = RVar(f"{self.name}.{suffix}", mn, ext, self)
            self._rvars.append(rvar)
        self.domain = ReductionDomain(
            [ReductionVariable(v.name, v.min, v.extent) for v in self._rvars]
        )

    # -- accessors --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rvars)

    def __getitem__(self, i: int) -> RVar:
        return self._rvars[i]

    def __iter__(self):
        return iter(self._rvars)

    @property
    def x(self) -> RVar:
        return self._rvars[0]

    @property
    def y(self) -> RVar:
        return self._rvars[1]

    @property
    def z(self) -> RVar:
        return self._rvars[2]

    @property
    def w(self) -> RVar:
        return self._rvars[3]

    # A 1-D RDom can stand in for its single variable inside expressions.
    def _as_expr(self) -> RVar:
        if len(self._rvars) != 1:
            raise ValueError(
                f"RDom {self.name!r} has {len(self._rvars)} dimensions; "
                "use r.x, r.y, ... to pick one"
            )
        return self._rvars[0]

    def __add__(self, other):
        return self._as_expr() + other

    def __radd__(self, other):
        return other + self._as_expr()

    def __sub__(self, other):
        return self._as_expr() - other

    def __rsub__(self, other):
        return other - self._as_expr()

    def __mul__(self, other):
        return self._as_expr() * other

    def __rmul__(self, other):
        return other * self._as_expr()


def rvars_in(e: Union[Expr, Sequence[Expr]]) -> List[RVar]:
    """All distinct reduction variables appearing in an expression (or list)."""
    from repro.ir.visitor import children_of

    found: List[RVar] = []
    seen = set()

    def walk(node):
        if isinstance(node, RVar):
            if node.name not in seen:
                seen.add(node.name)
                found.append(node)
            return
        if isinstance(node, Expr):
            for child in children_of(node):
                walk(child)

    if isinstance(e, Expr):
        walk(e)
    else:
        for item in e:
            walk(item)
    return found
