"""Free variables of the infinite integer domain over which Funcs are defined."""

from __future__ import annotations

import itertools

from repro.ir.expr import Variable
from repro.types import Int

__all__ = ["Var"]

_counter = itertools.count()


class Var(Variable):
    """A named dimension variable (``x``, ``y``, ``c`` ...).

    ``Var`` is a subclass of the IR :class:`~repro.ir.expr.Variable`, so it can
    be used directly inside arithmetic expressions; in a definition's left-hand
    side it names a dimension of the function being defined.
    """

    __slots__ = ()

    def __init__(self, name: str = None):
        if name is None:
            name = f"v{next(_counter)}"
        super().__init__(name, Int(32))

    @staticmethod
    def implicit(i: int) -> "Var":
        """The i-th implicit variable (used by scheduling helpers)."""
        return Var(f"_{i}")
