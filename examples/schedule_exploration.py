"""Walk the schedule space of Figure 2/3/4 for the two-stage blur.

Schedules are first-class values here: one *un-mutated* algorithm graph is
compiled under every named schedule through ``pipeline.compile(schedule=s,
target=t)``, each schedule is pushed through a JSON round-trip first (they
are data — store them, diff them, ship them), and repeated realizations hit
the pipeline's compilation cache instead of re-lowering.

For each strategy this prints the three trade-off metrics of Figure 3
(span, maximum reuse distance, work amplification) and the machine-model
time, illustrating why the best schedules are the mixed ones in the middle
of the space.

Run with:  python examples/schedule_exploration.py
"""

import numpy as np

from repro import Schedule, Target
from repro.apps import make_blur
from repro.machine import SMALL_CACHE_CPU, estimate_cost
from repro.metrics import measure_tradeoffs


def main() -> None:
    image = np.random.default_rng(1).random((128, 96)).astype(np.float32)

    # ONE algorithm graph; schedules never touch it.
    app = make_blur(image)
    pipeline = app.pipeline()
    size = app.default_size
    target = Target(backend="numpy")

    print(f"{'strategy':<20} {'span':>12} {'reuse dist':>12} {'work ampl':>10} "
          f"{'model ms':>10} {'digest':>18}")
    baseline_ops = None
    for name in ("breadth_first", "full_fusion", "sliding_window",
                 "tiled", "sliding_in_tiles", "tuned"):
        # Schedules are serializable values: JSON round-trip, then apply.
        schedule = Schedule.from_json(app.named_schedule(name).to_json())

        tradeoff = measure_tradeoffs(pipeline, size, schedule=schedule,
                                     baseline_ops=baseline_ops)
        if baseline_ops is None:
            baseline_ops = tradeoff.total_ops
            tradeoff.work_amplification = 1.0
        cost = estimate_cost(pipeline, size, schedule=schedule,
                             profile=SMALL_CACHE_CPU)

        # compile once / run many: the second call is pure execution.
        compiled = pipeline.compile(size, schedule=schedule, target=target)
        compiled()
        compiled()

        print(f"{name:<20} {tradeoff.span:>12.0f} {tradeoff.max_reuse_distance:>12d} "
              f"{tradeoff.work_amplification:>10.2f} {cost.milliseconds:>10.3f} "
              f"{schedule.digest():>18}")

    info = pipeline.cache_info()
    print(f"\ncompilation cache: {info.hits} hits, {info.misses} misses "
          f"({info.currsize}/{info.maxsize} entries)")
    print("Every schedule computes the same image; only locality, parallelism and")
    print("redundant work differ — the fundamental tension of Section 3.")


if __name__ == "__main__":
    main()
