"""Walk the schedule space of Figure 2/3/4 for the two-stage blur.

For each named strategy this prints the three trade-off metrics of Figure 3
(span, maximum reuse distance, work amplification) and the machine-model time,
illustrating why the best schedules are the mixed ones in the middle of the
space.

Run with:  python examples/schedule_exploration.py
"""

import numpy as np

from repro.apps import BLUR_SCHEDULES, make_blur
from repro.machine import SMALL_CACHE_CPU, estimate_cost
from repro.metrics import measure_tradeoffs


def main() -> None:
    image = np.random.default_rng(1).random((128, 96)).astype(np.float32)
    size = [image.shape[0], image.shape[1]]

    print(f"{'strategy':<20} {'span':>12} {'reuse dist':>12} {'work ampl':>10} {'model ms':>10}")
    baseline_ops = None
    for name in ("breadth_first", "full_fusion", "sliding_window",
                 "tiled", "sliding_in_tiles", "tuned"):
        app = make_blur(image).apply_schedule(name)
        tradeoff = measure_tradeoffs(app.pipeline(), size, baseline_ops=baseline_ops)
        if baseline_ops is None:
            baseline_ops = tradeoff.total_ops
            tradeoff.work_amplification = 1.0
        cost = estimate_cost(app.pipeline(), size, profile=SMALL_CACHE_CPU)
        print(f"{name:<20} {tradeoff.span:>12.0f} {tradeoff.max_reuse_distance:>12d} "
              f"{tradeoff.work_amplification:>10.2f} {cost.milliseconds:>10.3f}")

    print("\nEvery schedule computes the same image; only locality, parallelism and")
    print("redundant work differ — the fundamental tension of Section 3.")


if __name__ == "__main__":
    main()
