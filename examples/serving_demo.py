"""Serving demo: compile once, answer a stream of image requests.

A serving process looks nothing like a benchmark loop: it restarts often
(deploys, autoscaling), answers requests one at a time or in small batches,
and cares about tail latency as much as throughput.  This demo wires the
pieces the runtime provides for that shape:

* **persistent compile cache** — set ``REPRO_CACHE_DIR`` (or pass
  ``--cache-dir``) and the compiled program is stored on disk; the *next*
  process restores it without lowering anything (``disk_cache_info()``
  shows ``lowerings=0`` on a warm start);
* **batched execution** — ``CompiledPipeline.realize_batch`` runs a group
  of requests through one dispatch, amortizing bind/launch overhead;
* **parallel modes** — ``Target(threads=N)`` chunks parallel loops over a
  thread pool; ``Target(threads=N, parallel="process")`` uses a pool of
  worker processes with shared-memory buffers instead.

Run it twice with a cache directory to see the warm start:

    REPRO_CACHE_DIR=/tmp/repro-cache python examples/serving_demo.py
    REPRO_CACHE_DIR=/tmp/repro-cache python examples/serving_demo.py

``--stream`` switches the demo from request/response to *video streaming*:
the temporal denoise + tonemap app is compiled once per named schedule and a
synthetic frame sequence flows through
:func:`repro.streaming.realize_stream`, printing frames/sec and the peak
intermediate memory (measured and static) each schedule holds — the folded
schedules stay at a window-sized ring no matter how many frames pass.

Options: ``--requests N --batch B --workers W --parallel thread|process``;
``--stream [--frames N]``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline_schedule import Schedule
from repro.lang import Buffer, Func, ImageParam, Var, clamp
from repro.pipeline import Pipeline
from repro.runtime.disk_cache import CACHE_DIR_ENV_VAR
from repro.runtime.target import Target
from repro.types import Float

SHAPE = (320, 240)


def build_service():
    """The served pipeline: a 3x3 separable blur over a per-request frame."""
    width, height = SHAPE
    x, y = Var("x"), Var("y")
    frame = ImageParam(Float(32), 2, name="frame")
    bx, out = Func("demo_bx"), Func("demo_out")
    bx[x, y] = (frame[clamp(x - 1, 0, width - 1), y] + frame[x, y]
                + frame[clamp(x + 1, 0, width - 1), y]) / 3.0
    out[x, y] = (bx[x, clamp(y - 1, 0, height - 1)] + bx[x, y]
                 + bx[x, clamp(y + 1, 0, height - 1)]) / 3.0
    schedule = (Schedule().func("demo_bx").compute_root()
                .func("demo_out").parallel("y").schedule)
    # Bind a placeholder frame so the serving shape is baked at compile time;
    # real frames arrive per request and are validated against it.
    frame.set(Buffer(np.zeros(SHAPE, dtype=np.float32, order="F"), name="frame"))
    return out, schedule


def stream_demo(frames_count: int, workers: int) -> int:
    """Feed a synthetic frame sequence through realize_stream per schedule."""
    from repro.apps import make_video
    from repro.apps.video import DEFAULT_WINDOW
    from repro.reference import video_ref
    from repro.streaming import StreamStats, realize_stream

    width, height, chunk = 160, 120, 8
    app = make_video(width, height, chunk=chunk)
    rng = np.random.default_rng(7)
    frames = (rng.random((width, height, frames_count)) * 4.0).astype(np.float32)
    expected = video_ref(frames, DEFAULT_WINDOW)

    print(f"streaming {frames_count} frames of {width}x{height} "
          f"(chunk={chunk}, window={DEFAULT_WINDOW}) on the compiled backend")
    for schedule in ("breadth_first", "streaming", "streaming_folded",
                     "streaming_parallel"):
        target = Target("compiled", threads=workers) \
            if schedule == "streaming_parallel" else Target("compiled")
        compiled = app.compile(schedule, target=target)
        stats = StreamStats()
        start = time.perf_counter()
        out = [frame for frame in realize_stream(compiled, frames, stats=stats)]
        elapsed = time.perf_counter() - start
        assert np.stack(out, axis=2).tobytes() == expected.tobytes(), schedule
        peak = stats.static_peak_bytes
        print(f"  {schedule:<20} {len(out) / elapsed:9.1f} frames/sec   "
              f"peak intermediates {peak:>8d} B   "
              f"depth={stats.pipeline_depth}  (bit-identical to reference)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--batch", type=int, default=8,
                        help="requests per realize_batch dispatch (1 = serial)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--parallel", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--cache-dir", default=None,
                        help=f"persistent compile cache directory "
                             f"(default: ${CACHE_DIR_ENV_VAR} when set)")
    parser.add_argument("--stream", action="store_true",
                        help="stream video frames through realize_stream "
                             "instead of serving image requests")
    parser.add_argument("--frames", type=int, default=64,
                        help="frame count for --stream mode")
    args = parser.parse_args(argv)

    if args.stream:
        return stream_demo(args.frames, args.workers)

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR)
    output, schedule = build_service()
    pipeline = Pipeline(output, disk_cache=cache_dir)
    target = Target("compiled", threads=args.workers,
                    parallel=args.parallel if args.parallel == "process" else None)

    start = time.perf_counter()
    compiled = pipeline.compile(list(SHAPE), schedule=schedule, target=target)
    compile_ms = (time.perf_counter() - start) * 1e3
    info = pipeline.disk_cache_info()
    if cache_dir is None:
        print(f"compiled in {compile_ms:.1f} ms "
              f"(no cache dir: set {CACHE_DIR_ENV_VAR} to persist)")
    elif info.lowerings == 0:
        print(f"WARM start: program restored from {cache_dir} in "
              f"{compile_ms:.1f} ms — zero lowerings ({info})")
    else:
        print(f"COLD start: compiled in {compile_ms:.1f} ms and stored to "
              f"{cache_dir} ({info}); run again for the warm path")

    # The request stream: fresh frames, answered in groups of --batch.
    rng = np.random.default_rng(7)
    requests = [
        {"frame": np.asfortranarray(rng.random(SHAPE).astype(np.float32))}
        for _ in range(args.requests)
    ]
    compiled.run(inputs=requests[0])  # warm the worker pool outside timing

    latencies = []
    served = 0
    stream_start = time.perf_counter()
    for lo in range(0, len(requests), args.batch):
        group = requests[lo:lo + args.batch]
        start = time.perf_counter()
        results = (compiled.realize_batch(group) if len(group) > 1
                   else [compiled.run(inputs=group[0])])
        elapsed = time.perf_counter() - start
        latencies.extend([elapsed * 1e3] * len(group))
        served += len(results)
    total = time.perf_counter() - stream_start

    lat = np.asarray(latencies)
    print(f"served {served} requests in {total * 1e3:.0f} ms "
          f"({served / total:.1f} images/sec) using "
          f"{args.parallel} workers={args.workers} batch={args.batch}")
    print(f"request latency: p50 {np.percentile(lat, 50):.2f} ms, "
          f"p99 {np.percentile(lat, 99):.2f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
