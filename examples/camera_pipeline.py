"""Process synthetic raw sensor data through the camera pipeline.

Demonstrates a "complex" graph (Figure 6): hot-pixel suppression, demosaicking
through a web of interleaved stencils, color correction, and a tone curve
applied through a LUT — then shows how the tuned schedule fuses that web into
tiles of the output.

Run with:  python examples/camera_pipeline.py
"""

import numpy as np

from repro.apps import make_camera_pipe
from repro.machine import XEON_W3520, estimate_cost
from repro.metrics import analyze_pipeline


def make_synthetic_raw(width: int = 64, height: int = 48) -> np.ndarray:
    """A synthetic GR/BG Bayer mosaic of a color gradient scene."""
    xs, ys = np.meshgrid(np.arange(width), np.arange(height), indexing="ij")
    red = 400.0 + 500.0 * xs / width
    green = 300.0 + 400.0 * ys / height
    blue = 600.0 - 300.0 * xs / width
    raw = np.empty((width, height), dtype=np.float64)
    is_red = (xs % 2 == 1) & (ys % 2 == 0)
    is_blue = (xs % 2 == 0) & (ys % 2 == 1)
    raw[:] = green
    raw[is_red] = red[is_red]
    raw[is_blue] = blue[is_blue]
    rng = np.random.default_rng(11)
    raw += rng.normal(0, 5.0, raw.shape)
    # A few hot pixels for the suppression stage to clean up.
    hot = rng.integers(0, raw.size, 10)
    raw.ravel()[hot] = 1023
    return np.clip(raw, 0, 1023).astype(np.uint16)


def main() -> None:
    raw = make_synthetic_raw()
    out_size = [raw.shape[0] - 8, raw.shape[1] - 8, 3]

    app = make_camera_pipe(raw, color_temp=4500.0, gamma=2.2, contrast=40.0)
    stats = analyze_pipeline(app.output, name="camera_pipe")
    print(f"pipeline: {stats.num_functions} functions, {stats.num_stencils} stencils, "
          f"{stats.num_data_dependent} data-dependent stages")

    naive = make_camera_pipe(raw).apply_schedule("breadth_first")
    tuned = make_camera_pipe(raw).apply_schedule("tuned")
    rgb_naive = naive.realize(out_size)
    rgb_tuned = tuned.realize(out_size)
    print("schedules agree:", bool(np.allclose(rgb_naive, rgb_tuned, atol=1e-3)))
    print("output range   :", float(rgb_tuned.min()), "to", float(rgb_tuned.max()))

    cost_naive = estimate_cost(naive.pipeline(), out_size, profile=XEON_W3520)
    cost_tuned = estimate_cost(tuned.pipeline(), out_size, profile=XEON_W3520)
    print(f"machine model, breadth-first: {cost_naive.milliseconds:.2f} ms")
    print(f"machine model, tiled+fused  : {cost_tuned.milliseconds:.2f} ms "
          f"({cost_naive.milliseconds / cost_tuned.milliseconds:.2f}x)")


if __name__ == "__main__":
    main()
