"""Tone-map an image with local Laplacian filters (the paper's flagship pipeline).

Builds the multi-pyramid, data-dependent pipeline of Figure 1, runs it with
the naive and the tuned schedule, verifies they agree, and compares their
machine-model cost.

Run with:  python examples/local_laplacian_tonemap.py
"""

import numpy as np

from repro.apps import make_local_laplacian
from repro.machine import XEON_W3520, estimate_cost
from repro.metrics import analyze_pipeline


def make_test_image(width: int = 64, height: int = 48) -> np.ndarray:
    """A synthetic HDR-ish test image: a bright window over a dark gradient."""
    ys, xs = np.meshgrid(np.linspace(0, 1, height), np.linspace(0, 1, width))
    image = 0.15 * xs + 0.05 * ys
    image[width // 4: width // 2, height // 4: height // 2] += 0.7
    noise = np.random.default_rng(7).normal(0, 0.02, size=image.shape)
    return np.clip(image + noise, 0.0, 1.0).astype(np.float32)


def main() -> None:
    image = make_test_image()
    levels, intensity_levels = 3, 4

    app = make_local_laplacian(image, levels=levels, intensity_levels=intensity_levels,
                               alpha=1.0, beta=0.6)
    stats = analyze_pipeline(app.output, name="local_laplacian")
    print(f"pipeline: {stats.num_functions} functions, {stats.num_stencils} stencils, "
          f"structure: {stats.structure()}")

    naive = make_local_laplacian(image, levels=levels, intensity_levels=intensity_levels,
                                 alpha=1.0, beta=0.6).apply_schedule("breadth_first")
    tuned = make_local_laplacian(image, levels=levels, intensity_levels=intensity_levels,
                                 alpha=1.0, beta=0.6).apply_schedule("tuned")

    out_naive = naive.realize()
    out_tuned = tuned.realize()
    print("outputs agree:", bool(np.allclose(out_naive, out_tuned, atol=1e-4)))
    print(f"input  contrast (std): {image.std():.4f}")
    print(f"output contrast (std): {out_tuned.std():.4f}")

    cost_naive = estimate_cost(naive.pipeline(), naive.default_size, profile=XEON_W3520)
    cost_tuned = estimate_cost(tuned.pipeline(), tuned.default_size, profile=XEON_W3520)
    print(f"machine model, naive schedule: {cost_naive.milliseconds:.2f} ms")
    print(f"machine model, tuned schedule: {cost_tuned.milliseconds:.2f} ms "
          f"({cost_naive.milliseconds / cost_tuned.milliseconds:.2f}x faster)")


if __name__ == "__main__":
    main()
