"""Autotune the blur pipeline with the genetic-algorithm tuner of Section 5.

The tuner searches the schedule space (call schedules + domain orders) using
the machine model as its fitness function, then the winning schedule is
checked against the reference output and compared with the breadth-first
baseline.

Run with:  python examples/autotune_blur.py
"""

import numpy as np

from repro.apps import make_blur
from repro.autotuner import Autotuner, CostModelEvaluator, TunerConfig
from repro.machine import SMALL_CACHE_CPU, estimate_cost
from repro.pipeline import Pipeline
from repro.reference import blur_ref


def main() -> None:
    image = np.random.default_rng(3).random((96, 64)).astype(np.float32)
    app = make_blur(image)
    pipeline = Pipeline(app.output)
    tuning_size = [64, 48]

    evaluator = CostModelEvaluator(pipeline, tuning_size, profile=SMALL_CACHE_CPU)
    config = TunerConfig(population_size=12, generations=4, seed=0)
    print(f"tuning blur: population {config.population_size}, "
          f"{config.generations} generations ...")
    result = Autotuner(pipeline, evaluator, config).run()

    print("\nconvergence (best estimated cycles per generation):")
    for generation, fitness in enumerate(result.history):
        print(f"  generation {generation}: {fitness:,.0f}")
    print(f"candidates evaluated: {result.evaluations} "
          f"(invalid: {result.invalid_candidates})")

    print("\nbest schedule found:")
    print(result.best_genome.describe())

    # The winner is a first-class Schedule value: serializable (JSON) and
    # applied non-destructively — ship it separately from the algorithm.
    best = result.best_schedule(pipeline)
    print(f"\nschedule digest: {best.digest()}")
    output = pipeline.realize(app.default_size, schedule=best)
    print("correct against reference:",
          bool(np.allclose(output, blur_ref(image), atol=1e-4)))

    naive = estimate_cost(pipeline, app.default_size, profile=SMALL_CACHE_CPU)
    tuned = estimate_cost(pipeline, app.default_size, schedule=best,
                          profile=SMALL_CACHE_CPU)
    print(f"breadth-first baseline: {naive.milliseconds:.3f} ms (model)")
    print(f"autotuned schedule    : {tuned.milliseconds:.3f} ms (model) "
          f"-> {naive.milliseconds / tuned.milliseconds:.2f}x faster")


if __name__ == "__main__":
    main()
