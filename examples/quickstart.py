"""Quickstart: the two-stage blur of Section 3.1 and a first taste of scheduling.

Run with:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.lang import Buffer, Func, Var, repeat_edge
from repro.machine import XEON_W3520, estimate_cost
from repro.pipeline import Pipeline


def main() -> None:
    # --- the algorithm: what to compute -----------------------------------
    rng = np.random.default_rng(0)
    image = rng.random((256, 192)).astype(np.float32)

    input_buffer = Buffer(image, name="input")
    clamped = repeat_edge(input_buffer)          # boundary condition as a stage

    x, y = Var("x"), Var("y")
    blur_x, blur_y = Func("blur_x"), Func("blur_y")
    blur_x[x, y] = (clamped[x - 1, y] + clamped[x, y] + clamped[x + 1, y]) / 3.0
    blur_y[x, y] = (blur_x[x, y - 1] + blur_x[x, y] + blur_x[x, y + 1]) / 3.0

    # --- a first schedule: how to compute it --------------------------------
    xo, yo, xi, yi = Var("xo"), Var("yo"), Var("xi"), Var("yi")
    blur_y.tile(x, y, xo, yo, xi, yi, 32, 32).parallel(yo).vectorize(xi, 4)
    blur_x.compute_at(blur_y, xo).vectorize(x, 4)

    # --- run it --------------------------------------------------------------
    result = blur_y.realize([64, 48])
    print("output shape:", result.shape)
    print("output mean :", float(result.mean()))

    # --- pick a backend -------------------------------------------------------
    # The same lowered pipeline can run on the scalar interpreter ("interp",
    # the default) or the vectorized NumPy backend ("numpy"), which batches
    # innermost loops into whole-array operations.  Output is bit-identical.
    pipeline = Pipeline(blur_y)
    start = time.perf_counter()
    interp_result = pipeline.realize([256, 192], backend="interp")
    interp_seconds = time.perf_counter() - start
    start = time.perf_counter()
    numpy_result = pipeline.realize([256, 192], backend="numpy")
    numpy_seconds = time.perf_counter() - start
    assert np.array_equal(interp_result, numpy_result)
    print(f"\ninterp backend: {interp_seconds * 1000:.1f} ms, "
          f"numpy backend: {numpy_seconds * 1000:.1f} ms "
          f"({interp_seconds / numpy_seconds:.0f}x faster, bit-identical)")

    # --- inspect what the compiler generated ---------------------------------
    print("\nSynthesized loop nest (truncated):")
    nest = Pipeline(blur_y).print_loop_nest()
    print("\n".join(nest.splitlines()[:25]))

    # --- estimate performance on the modelled machine -------------------------
    report = estimate_cost(Pipeline(blur_y), [64, 48], profile=XEON_W3520)
    print(f"\nMachine-model estimate on {report.profile_name}: "
          f"{report.milliseconds:.3f} ms ({report.cycles:.0f} cycles)")


if __name__ == "__main__":
    main()
